package obs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
)

// The live telemetry plane's per-step pipeline: every rank publishes one
// StepSample per training step into a fixed-capacity lock-free ring, a
// heartbeat-paced reader drains new samples with ReadStepsSince, and the
// compact step-frame codec (AppendStepFrame/DecodeStepFrame) ships them over
// the control plane to the coordinator's ClusterTimeline.
//
// Like the span shards, the plane is gated by its own package-level atomic:
// disabled — the default — RecordStep is one atomic load and a branch, zero
// heap allocations. Enabled, publishing stays lock-free and allocation-free:
// a ticket from an atomic cursor claims a slot, the sample lands as plain
// atomic words, and a stamp store publishes it. The ring wraps (newest wins)
// rather than dropping new samples: live telemetry wants the current step,
// not the oldest unread one.

// StepSample is one rank's telemetry record for one completed training step.
// All fields are int64 so samples publish as fixed atomic words and encode
// as fixed-width frames; durations are nanoseconds, byte/alloc/pool fields
// are deltas over the step.
type StepSample struct {
	Rank       int64 `json:"rank"`
	Step       int64 `json:"step"`
	WallNs     int64 `json:"wall_ns"`
	ComputeNs  int64 `json:"compute_ns"`
	WireNs     int64 `json:"wire_ns"`
	IdleNs     int64 `json:"idle_ns"`
	BytesSent  int64 `json:"bytes_sent"`
	BytesRecvd int64 `json:"bytes_recvd"`
	QueueDepth int64 `json:"queue_depth"`
	PoolHit    int64 `json:"pool_hit"`
	PoolMiss   int64 `json:"pool_miss"`
	Allocs     int64 `json:"allocs"`
}

// PoolHitPct is the step's scratch-pool hit rate (0 when the step touched
// the pool not at all).
func (s *StepSample) PoolHitPct() float64 {
	if s.PoolHit+s.PoolMiss == 0 {
		return 0
	}
	return 100 * float64(s.PoolHit) / float64(s.PoolHit+s.PoolMiss)
}

const (
	// StepRingCap is the step-sample ring capacity (must stay a power of
	// two): at one sample per step it covers the last ~1k steps, far beyond
	// any heartbeat gap a live reader has to bridge.
	StepRingCap = 1 << 10

	stepWords = 12 // int64 fields per sample, kept in struct order
)

// stepSlot holds one published sample as atomic words plus the stamp that
// validates it: a reader accepts slot contents only when the stamp equals
// ticket+1 both before and after the copy, so a slot mid-overwrite (the ring
// wrapped during the read) is skipped, never torn — and because the words
// are atomics, the skip is also clean under the race detector.
type stepSlot struct {
	stamp atomic.Uint64
	w     [stepWords]atomic.Int64
}

var (
	stepGate   atomic.Bool
	stepRing   [StepRingCap]stepSlot
	stepCursor atomic.Int64 // total samples ever published (next ticket)
)

// EnableSteps arms the per-step telemetry plane. Idempotent. Callers almost
// always pair it with Enable(): the sample's breakdown/counter fields read
// the main registry, which records nothing while its own gate is off.
func EnableSteps() { stepGate.Store(true) }

// DisableSteps turns the plane off. Idempotent.
func DisableSteps() { stepGate.Store(false) }

// StepsEnabled reports the telemetry gate — for callers that must pay a real
// cost (computing a queue depth, reading runtime metrics) before RecordStep.
func StepsEnabled() bool { return stepGate.Load() }

// RecordStep publishes one sample into the ring. Disabled: one atomic load
// and a branch, zero allocations. Enabled: lock-free, allocation-free.
func RecordStep(s StepSample) {
	if !stepGate.Load() {
		return
	}
	t := stepCursor.Add(1) - 1
	sl := &stepRing[t&(StepRingCap-1)]
	sl.stamp.Store(0) // invalidate before mutating so readers never mix tickets
	sl.w[0].Store(s.Rank)
	sl.w[1].Store(s.Step)
	sl.w[2].Store(s.WallNs)
	sl.w[3].Store(s.ComputeNs)
	sl.w[4].Store(s.WireNs)
	sl.w[5].Store(s.IdleNs)
	sl.w[6].Store(s.BytesSent)
	sl.w[7].Store(s.BytesRecvd)
	sl.w[8].Store(s.QueueDepth)
	sl.w[9].Store(s.PoolHit)
	sl.w[10].Store(s.PoolMiss)
	sl.w[11].Store(s.Allocs)
	sl.stamp.Store(uint64(t) + 1)
}

// StepCount returns how many samples have ever been published (the ring
// holds the newest StepRingCap of them).
func StepCount() int64 { return stepCursor.Load() }

// ReadStepsSince copies samples published after *cursor into dst, oldest
// first, and advances *cursor past what it consumed (including any slots the
// ring overwrote or that were mid-publish — telemetry readers want progress,
// not completeness). A cursor more than StepRingCap behind skips forward to
// the oldest sample still resident. Returns the number of samples written;
// call in a loop (or with a large dst) to drain a backlog. Allocation-free.
func ReadStepsSince(cursor *int64, dst []StepSample) int {
	cur := stepCursor.Load()
	from := *cursor
	if from < 0 {
		from = 0
	}
	if cur-from > StepRingCap {
		from = cur - StepRingCap
	}
	n := 0
	t := from
	for ; t < cur && n < len(dst); t++ {
		sl := &stepRing[t&(StepRingCap-1)]
		if sl.stamp.Load() != uint64(t)+1 {
			continue // overwritten by a wrap or mid-publish; skip
		}
		s := StepSample{
			Rank: sl.w[0].Load(), Step: sl.w[1].Load(), WallNs: sl.w[2].Load(),
			ComputeNs: sl.w[3].Load(), WireNs: sl.w[4].Load(), IdleNs: sl.w[5].Load(),
			BytesSent: sl.w[6].Load(), BytesRecvd: sl.w[7].Load(), QueueDepth: sl.w[8].Load(),
			PoolHit: sl.w[9].Load(), PoolMiss: sl.w[10].Load(), Allocs: sl.w[11].Load(),
		}
		if sl.stamp.Load() != uint64(t)+1 {
			continue // wrapped mid-copy; the words may mix tickets — discard
		}
		dst[n] = s
		n++
	}
	*cursor = t
	return n
}

// resetStepsForTest rewinds the ring to empty — test hook only (the cursor
// is monotonic in production so heartbeat cursors never see time reverse).
func resetStepsForTest() {
	stepCursor.Store(0)
	for i := range stepRing {
		stepRing[i].stamp.Store(0)
	}
}

// Step-frame wire codec: the compact binary frame a worker piggybacks onto
// its control-plane heartbeat. Layout (little-endian):
//
//	u8  magic (0x53 'S')   u8 version (1)   u16 count
//	count × stepWords × i64 sample words (struct field order)
//	u32 CRC32 (IEEE) over everything above
const (
	stepFrameMagic   = 0x53
	stepFrameVersion = 1
	stepFrameHeader  = 4
	stepSampleBytes  = stepWords * 8
)

// MaxStepFrameSamples bounds one frame (count is a u16).
const MaxStepFrameSamples = 1<<16 - 1

// AppendStepFrame appends the encoded step frame to buf and returns the
// extended slice — the caller reuses buf across heartbeats, so the steady
// state allocates only when a frame outgrows every previous one.
func AppendStepFrame(buf []byte, samples []StepSample) []byte {
	if len(samples) > MaxStepFrameSamples {
		samples = samples[len(samples)-MaxStepFrameSamples:]
	}
	start := len(buf)
	buf = append(buf, stepFrameMagic, stepFrameVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(samples)))
	for i := range samples {
		s := &samples[i]
		for _, v := range [stepWords]int64{
			s.Rank, s.Step, s.WallNs, s.ComputeNs, s.WireNs, s.IdleNs,
			s.BytesSent, s.BytesRecvd, s.QueueDepth, s.PoolHit, s.PoolMiss, s.Allocs,
		} {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// DecodeStepFrameInto decodes one step frame, appending its samples to dst
// (pass dst[:0] of a reused buffer for an allocation-free steady state) and
// returning the extended slice. The CRC is always verified: a heartbeat
// carrying a corrupt frame is dropped whole rather than aggregated.
func DecodeStepFrameInto(dst []StepSample, data []byte) ([]StepSample, error) {
	if len(data) < stepFrameHeader+4 {
		return dst, fmt.Errorf("obs: step frame truncated (%d bytes)", len(data))
	}
	if data[0] != stepFrameMagic {
		return dst, fmt.Errorf("obs: step frame bad magic 0x%02x", data[0])
	}
	if data[1] != stepFrameVersion {
		return dst, fmt.Errorf("obs: step frame version %d (want %d)", data[1], stepFrameVersion)
	}
	count := int(binary.LittleEndian.Uint16(data[2:4]))
	want := stepFrameHeader + count*stepSampleBytes + 4
	if len(data) != want {
		return dst, fmt.Errorf("obs: step frame has %d bytes for %d samples (want %d)", len(data), count, want)
	}
	body := data[:want-4]
	if got, wantCRC := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(data[want-4:]); got != wantCRC {
		return dst, fmt.Errorf("obs: step frame CRC mismatch (got %08x want %08x)", got, wantCRC)
	}
	off := stepFrameHeader
	for i := 0; i < count; i++ {
		var w [stepWords]int64
		for j := range w {
			w[j] = int64(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
		dst = append(dst, StepSample{
			Rank: w[0], Step: w[1], WallNs: w[2], ComputeNs: w[3], WireNs: w[4], IdleNs: w[5],
			BytesSent: w[6], BytesRecvd: w[7], QueueDepth: w[8], PoolHit: w[9], PoolMiss: w[10], Allocs: w[11],
		})
	}
	return dst, nil
}

// DecodeStepFrame is DecodeStepFrameInto with a fresh destination.
func DecodeStepFrame(data []byte) ([]StepSample, error) {
	return DecodeStepFrameInto(nil, data)
}
