package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// MetricsServer exposes the telemetry plane over HTTP:
//
//	/metrics        Prometheus text format (per-rank step gauges + cluster
//	                aggregates + obs counter/scope passthrough)
//	/healthz        200 "ok" until SetHealth marks the process unhealthy
//	/debug/cluster  the full ClusterSnapshot as JSON
//
// Both jaxpp-train (cluster view) and jaxpp-worker (local view) serve the
// same server; the worker simply has a single rank in its timeline.
type MetricsServer struct {
	tl      *ClusterTimeline
	srv     *http.Server
	ln      net.Listener
	healthy atomic.Bool
	errMsg  atomic.Pointer[string]
}

// StartMetricsServer listens on addr (e.g. ":9090") and serves until Close.
// The returned server is already accepting; the caller's run loop never
// blocks on it. The timeline may be shared with heartbeat ingest goroutines.
func StartMetricsServer(addr string, tl *ClusterTimeline) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	ms := &MetricsServer{tl: tl, ln: ln}
	ms.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", ms.handleMetrics)
	mux.HandleFunc("/healthz", ms.handleHealthz)
	mux.HandleFunc("/debug/cluster", ms.handleCluster)
	ms.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go ms.srv.Serve(ln)
	return ms, nil
}

// Addr returns the bound address (useful when addr had port 0).
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// SetHealth flips /healthz; msg is served alongside a 503 when down.
func (ms *MetricsServer) SetHealth(ok bool, msg string) {
	ms.healthy.Store(ok)
	ms.errMsg.Store(&msg)
}

// Close stops accepting and closes the listener.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }

func (ms *MetricsServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if ms.healthy.Load() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	if m := ms.errMsg.Load(); m != nil && *m != "" {
		fmt.Fprintln(w, *m)
	} else {
		fmt.Fprintln(w, "unhealthy")
	}
}

func (ms *MetricsServer) handleCluster(w http.ResponseWriter, _ *http.Request) {
	ms.tl.SyncLocal()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := ms.tl.Snapshot()
	// JSON object keys must be strings; re-key the rank map.
	out := struct {
		TakenNs    int64                `json:"taken_ns"`
		Ranks      map[string]RankState `json:"ranks"`
		Stragglers []int64              `json:"stragglers"`
		FlagsTotal int64                `json:"straggler_flags_total"`
	}{snap.TakenNs, make(map[string]RankState, len(snap.Ranks)), snap.Stragglers, snap.FlagsTotal}
	for r, rs := range snap.Ranks {
		out.Ranks[fmt.Sprint(r)] = rs
	}
	enc.Encode(out)
}

// handleMetrics renders Prometheus text exposition format v0.0.4. This is a
// cold path (a scrape every few seconds); clarity over allocation-thrift.
func (ms *MetricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	ms.tl.SyncLocal()
	snap := ms.tl.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	ranks := make([]int64, 0, len(snap.Ranks))
	for r := range snap.Ranks {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })

	emit := func(name, help, typ string, val func(rs RankState) float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, r := range ranks {
			fmt.Fprintf(&b, "%s{rank=\"%d\"} %g\n", name, r, val(snap.Ranks[r]))
		}
	}

	emit("jaxpp_step_total", "Training steps completed per rank.", "counter",
		func(rs RankState) float64 { return float64(rs.Last.Step + 1) })
	emit("jaxpp_step_wall_ms", "Latest step wall time per rank.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.WallNs) / 1e6 })
	emit("jaxpp_step_compute_ms", "Compute time in the latest step.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.ComputeNs) / 1e6 })
	emit("jaxpp_step_wire_ms", "Wire (serialize+send) time in the latest step.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.WireNs) / 1e6 })
	emit("jaxpp_step_idle_ms", "Idle (blocked receive) time in the latest step.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.IdleNs) / 1e6 })
	emit("jaxpp_step_bytes_sent", "Bytes sent during the latest step.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.BytesSent) })
	emit("jaxpp_step_bytes_recvd", "Bytes received during the latest step.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.BytesRecvd) })
	emit("jaxpp_send_queue_depth", "Sender mailbox depth at the latest step boundary.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.QueueDepth) })
	emit("jaxpp_pool_hit_rate_pct", "Scratch-pool hit rate over the latest step.", "gauge",
		func(rs RankState) float64 { return rs.Last.PoolHitPct() })
	emit("jaxpp_step_allocs", "Heap allocations during the latest step.", "gauge",
		func(rs RankState) float64 { return float64(rs.Last.Allocs) })
	emit("jaxpp_straggler", "1 while the rank is flagged as a straggler.", "gauge",
		func(rs RankState) float64 {
			if rs.Straggler {
				return 1
			}
			return 0
		})

	fmt.Fprintf(&b, "# HELP jaxpp_straggler_flags_total Straggler flag transitions since start.\n# TYPE jaxpp_straggler_flags_total counter\njaxpp_straggler_flags_total %d\n", snap.FlagsTotal)
	fmt.Fprintf(&b, "# HELP jaxpp_ranks Ranks reporting telemetry.\n# TYPE jaxpp_ranks gauge\njaxpp_ranks %d\n", len(ranks))
	fmt.Fprintf(&b, "# HELP jaxpp_telemetry_samples_total Step samples published locally since start.\n# TYPE jaxpp_telemetry_samples_total counter\njaxpp_telemetry_samples_total %d\n", StepCount())

	// Registry passthrough: every named counter and scope aggregate, so
	// one scrape carries the whole profiling surface.
	names, counts := CounterNames()
	if len(names) > 0 {
		fmt.Fprint(&b, "# HELP jaxpp_obs_counter Named obs counter values.\n# TYPE jaxpp_obs_counter counter\n")
		for i, n := range names {
			fmt.Fprintf(&b, "jaxpp_obs_counter{name=%q} %d\n", n, counts[i])
		}
	}
	sNames, totals := ScopeTotals()
	if len(sNames) > 0 {
		fmt.Fprint(&b, "# HELP jaxpp_obs_scope_ns_total Cumulative nanoseconds per obs scope.\n# TYPE jaxpp_obs_scope_ns_total counter\n")
		for i, n := range sNames {
			fmt.Fprintf(&b, "jaxpp_obs_scope_ns_total{name=%q} %d\n", n, totals[i])
		}
	}
	w.Write([]byte(b.String()))
}
