package obs

import (
	"sync"
	"testing"
)

func sampleForStep(rank, step int64) StepSample {
	return StepSample{
		Rank: rank, Step: step, WallNs: 1000 + step, ComputeNs: 600, WireNs: 300,
		IdleNs: 100, BytesSent: 1 << 20, BytesRecvd: 1 << 19, QueueDepth: 2,
		PoolHit: 90, PoolMiss: 10, Allocs: 4,
	}
}

func TestRecordStepDisabledIsNoop(t *testing.T) {
	resetStepsForTest()
	DisableSteps()
	RecordStep(sampleForStep(0, 1))
	if got := StepCount(); got != 0 {
		t.Fatalf("disabled RecordStep published %d samples", got)
	}
}

func TestRecordStepZeroAllocs(t *testing.T) {
	resetStepsForTest()
	s := sampleForStep(3, 7)

	DisableSteps()
	if a := testing.AllocsPerRun(1000, func() { RecordStep(s) }); a != 0 {
		t.Fatalf("disabled RecordStep allocates %.1f/op, want 0", a)
	}
	EnableSteps()
	defer DisableSteps()
	if a := testing.AllocsPerRun(1000, func() { RecordStep(s) }); a != 0 {
		t.Fatalf("enabled RecordStep allocates %.1f/op, want 0", a)
	}

	resetStepsForTest()
	for i := int64(0); i < 64; i++ {
		RecordStep(sampleForStep(0, i))
	}
	var cursor int64
	dst := make([]StepSample, 16)
	if a := testing.AllocsPerRun(100, func() {
		cursor = 0
		for ReadStepsSince(&cursor, dst) > 0 {
		}
	}); a != 0 {
		t.Fatalf("ReadStepsSince allocates %.1f/op, want 0", a)
	}
}

func TestReadStepsSinceDrains(t *testing.T) {
	resetStepsForTest()
	EnableSteps()
	defer DisableSteps()

	const total = 100
	for i := int64(0); i < total; i++ {
		RecordStep(sampleForStep(i%4, i))
	}
	var cursor int64
	var got []StepSample
	dst := make([]StepSample, 33)
	for {
		n := ReadStepsSince(&cursor, dst)
		if n == 0 {
			break
		}
		got = append(got, dst[:n]...)
	}
	if len(got) != total {
		t.Fatalf("drained %d samples, want %d", len(got), total)
	}
	for i, s := range got {
		want := sampleForStep(int64(i)%4, int64(i))
		if s != want {
			t.Fatalf("sample %d = %+v, want %+v", i, s, want)
		}
	}
	if cursor != total {
		t.Fatalf("cursor = %d, want %d", cursor, total)
	}
	// Nothing new: no samples, cursor stays put.
	if n := ReadStepsSince(&cursor, dst); n != 0 {
		t.Fatalf("second drain returned %d samples, want 0", n)
	}
}

func TestReadStepsSinceAfterWrap(t *testing.T) {
	resetStepsForTest()
	EnableSteps()
	defer DisableSteps()

	const total = StepRingCap + 200
	for i := int64(0); i < total; i++ {
		RecordStep(sampleForStep(1, i))
	}
	// A cursor at zero is far behind; the reader must skip to the oldest
	// resident sample and still return strictly increasing steps.
	var cursor int64
	var got []StepSample
	dst := make([]StepSample, 256)
	for {
		n := ReadStepsSince(&cursor, dst)
		if n == 0 {
			break
		}
		got = append(got, dst[:n]...)
	}
	if len(got) != StepRingCap {
		t.Fatalf("drained %d samples after wrap, want %d", len(got), StepRingCap)
	}
	if first := got[0].Step; first != total-StepRingCap {
		t.Fatalf("oldest resident step = %d, want %d", first, total-StepRingCap)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Step != got[i-1].Step+1 {
			t.Fatalf("steps not consecutive at %d: %d then %d", i, got[i-1].Step, got[i].Step)
		}
	}
}

// TestStepRingConcurrent hammers the ring with concurrent writers and a
// reader; under -race this pins that the seqlock protocol is data-race-free,
// and functionally that every accepted sample is internally consistent.
func TestStepRingConcurrent(t *testing.T) {
	resetStepsForTest()
	EnableSteps()
	defer DisableSteps()

	const writers = 4
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(rank int64) {
			defer wg.Done()
			for i := int64(0); i < perWriter; i++ {
				// Every field derived from Step so the reader can detect a
				// torn sample that mixed two tickets' words.
				RecordStep(StepSample{
					Rank: rank, Step: i, WallNs: i * 3, ComputeNs: i * 5,
					WireNs: i * 7, IdleNs: i * 11, BytesSent: i * 13,
					BytesRecvd: i * 17, QueueDepth: i * 19, PoolHit: i * 23,
					PoolMiss: i * 29, Allocs: i * 31,
				})
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cursor int64
		dst := make([]StepSample, 512)
		for {
			n := ReadStepsSince(&cursor, dst)
			for _, s := range dst[:n] {
				i := s.Step
				if s.WallNs != i*3 || s.ComputeNs != i*5 || s.WireNs != i*7 ||
					s.IdleNs != i*11 || s.BytesSent != i*13 || s.BytesRecvd != i*17 ||
					s.QueueDepth != i*19 || s.PoolHit != i*23 || s.PoolMiss != i*29 ||
					s.Allocs != i*31 {
					t.Errorf("torn sample accepted: %+v", s)
					return
				}
			}
			if n == 0 && StepCount() == writers*perWriter {
				return
			}
		}
	}()
	wg.Wait()
	<-done
}

func TestStepFrameRoundTrip(t *testing.T) {
	samples := []StepSample{
		sampleForStep(0, 1),
		sampleForStep(3, 2),
		{Rank: 2, Step: -1, WallNs: -5, Allocs: 1<<62 + 3}, // negative + huge values survive
	}
	frame := AppendStepFrame(nil, samples)
	got, err := DecodeStepFrame(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d = %+v, want %+v", i, got[i], samples[i])
		}
	}

	// Empty frame is legal (heartbeat with no new steps).
	empty := AppendStepFrame(nil, nil)
	if got, err := DecodeStepFrame(empty); err != nil || len(got) != 0 {
		t.Fatalf("empty frame: got %d samples, err %v", len(got), err)
	}

	// Into-variant appends without clobbering what's already there.
	pre := []StepSample{sampleForStep(9, 9)}
	all, err := DecodeStepFrameInto(pre, frame)
	if err != nil {
		t.Fatalf("decode into: %v", err)
	}
	if len(all) != 1+len(samples) || all[0] != pre[0] {
		t.Fatalf("DecodeStepFrameInto clobbered prefix: %+v", all)
	}
}

func TestStepFrameRejectsCorruption(t *testing.T) {
	frame := AppendStepFrame(nil, []StepSample{sampleForStep(1, 5)})

	flip := append([]byte(nil), frame...)
	flip[stepFrameHeader+8] ^= 0x40 // corrupt a sample word
	if _, err := DecodeStepFrame(flip); err == nil {
		t.Fatal("corrupt body passed CRC")
	}

	short := frame[:len(frame)-3]
	if _, err := DecodeStepFrame(short); err == nil {
		t.Fatal("truncated frame decoded")
	}

	badMagic := append([]byte(nil), frame...)
	badMagic[0] = 0x00
	if _, err := DecodeStepFrame(badMagic); err == nil {
		t.Fatal("bad magic decoded")
	}

	badVer := append([]byte(nil), frame...)
	badVer[1] = 99
	if _, err := DecodeStepFrame(badVer); err == nil {
		t.Fatal("bad version decoded")
	}

	if _, err := DecodeStepFrame(nil); err == nil {
		t.Fatal("nil frame decoded")
	}
}

func TestPoolHitPct(t *testing.T) {
	s := StepSample{PoolHit: 3, PoolMiss: 1}
	if got := s.PoolHitPct(); got != 75 {
		t.Fatalf("PoolHitPct = %v, want 75", got)
	}
	zero := StepSample{}
	if got := zero.PoolHitPct(); got != 0 {
		t.Fatalf("PoolHitPct of empty sample = %v, want 0", got)
	}
}
