package obs

import (
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/obs/flight"
)

// ClusterTimeline is the coordinator-side aggregate of the telemetry plane:
// every rank's step samples (streamed in over the control-plane heartbeat,
// or drained locally for the coordinator's own rank) land here, and each
// ingest re-evaluates the straggler detectors. It backs /metrics,
// /debug/cluster, and the one-line WARNs an operator actually reads.

// StragglerConfig tunes detection. Zero values take the noted defaults.
type StragglerConfig struct {
	// Factor flags a rank whose step wall time exceeds Factor × the median
	// of the latest wall times across ranks (default 2.0).
	Factor float64
	// Strikes is how many consecutive over-threshold steps it takes to flag
	// (default 3) — one slow step is noise, three in a row is a straggler.
	Strikes int
	// MinWall ignores steps faster than this (default 1ms): at microsecond
	// step times scheduler jitter swamps any real signal.
	MinWall time.Duration
	// QueueStrikes flags persistent sender-queue growth: this many
	// consecutive samples with strictly increasing depth above QueueFloor
	// (default 5 samples above a floor of 4).
	QueueStrikes int
	QueueFloor   int64
}

func (c *StragglerConfig) defaults() {
	if c.Factor <= 1 {
		c.Factor = 2.0
	}
	if c.Strikes <= 0 {
		c.Strikes = 3
	}
	if c.MinWall <= 0 {
		c.MinWall = time.Millisecond
	}
	if c.QueueStrikes <= 0 {
		c.QueueStrikes = 5
	}
	if c.QueueFloor <= 0 {
		c.QueueFloor = 4
	}
}

// RankState is one rank's latest telemetry as the coordinator sees it.
type RankState struct {
	Last       StepSample `json:"last"`
	Samples    int64      `json:"samples"`
	LastSeenNs int64      `json:"last_seen_ns"` // coordinator wall clock
	Straggler  bool       `json:"straggler"`
	Reason     string     `json:"reason,omitempty"`

	strikes      int // consecutive over-threshold steps
	queueStrikes int // consecutive strictly-increasing queue depths
	lastQueue    int64
}

// ClusterTimeline aggregates per-rank samples and flags stragglers. Safe for
// concurrent use (heartbeat handler goroutines + HTTP handlers).
type ClusterTimeline struct {
	cfg StragglerConfig

	mu    sync.Mutex
	ranks map[int64]*RankState
	flags int64 // straggler flag transitions (mirrors the obs counter)

	localCursor  int64
	localScratch [64]StepSample
	decodeBuf    []StepSample

	// wallMedianScratch avoids per-ingest allocation for the median.
	wallScratch []int64
}

// cStragglerFlags counts flag transitions in the obs counter registry so the
// signal shows up in profiling snapshots and /metrics passthrough alike.
var cStragglerFlags = Counter("telemetry/straggler_flags")

// NewClusterTimeline builds an empty timeline.
func NewClusterTimeline(cfg StragglerConfig) *ClusterTimeline {
	cfg.defaults()
	return &ClusterTimeline{cfg: cfg, ranks: make(map[int64]*RankState)}
}

// IngestFrame decodes a heartbeat-piggybacked step frame from a rank and
// ingests every sample. Corrupt frames are dropped whole (logged once per
// occurrence) — the next heartbeat resends nothing, but telemetry is lossy
// by design.
func (tl *ClusterTimeline) IngestFrame(rank int, data []byte) {
	if len(data) == 0 {
		return
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	samples, err := DecodeStepFrameInto(tl.decodeBuf[:0], data)
	tl.decodeBuf = samples[:0]
	if err != nil {
		log.Printf("obs: dropping telemetry frame from rank %d: %v", rank, err)
		return
	}
	for i := range samples {
		tl.ingestLocked(samples[i])
	}
}

// Ingest adds one sample (test harnesses and local aggregation).
func (tl *ClusterTimeline) Ingest(s StepSample) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.ingestLocked(s)
}

// SyncLocal drains the process-global step ring into the timeline — the
// coordinator's own rank (and the worker's local /metrics view) stream
// through here instead of over the wire.
func (tl *ClusterTimeline) SyncLocal() {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	for {
		n := ReadStepsSince(&tl.localCursor, tl.localScratch[:])
		if n == 0 {
			return
		}
		for i := 0; i < n; i++ {
			tl.ingestLocked(tl.localScratch[i])
		}
	}
}

func (tl *ClusterTimeline) ingestLocked(s StepSample) {
	rs := tl.ranks[s.Rank]
	if rs == nil {
		rs = &RankState{}
		tl.ranks[s.Rank] = rs
	}
	rs.Last = s
	rs.Samples++
	rs.LastSeenNs = time.Now().UnixNano()

	tl.evalStepTimeLocked(rs, s)
	tl.evalQueueLocked(rs, s)
}

// medianWallLocked is the median of every rank's latest step wall time.
func (tl *ClusterTimeline) medianWallLocked() int64 {
	tl.wallScratch = tl.wallScratch[:0]
	for _, rs := range tl.ranks {
		if rs.Last.WallNs > 0 {
			tl.wallScratch = append(tl.wallScratch, rs.Last.WallNs)
		}
	}
	if len(tl.wallScratch) == 0 {
		return 0
	}
	sort.Slice(tl.wallScratch, func(i, j int) bool { return tl.wallScratch[i] < tl.wallScratch[j] })
	return tl.wallScratch[len(tl.wallScratch)/2]
}

func (tl *ClusterTimeline) evalStepTimeLocked(rs *RankState, s StepSample) {
	// Need at least two ranks for a median to mean anything.
	if len(tl.ranks) < 2 || s.WallNs < int64(tl.cfg.MinWall) {
		rs.strikes = 0
		tl.maybeClearLocked(rs, s)
		return
	}
	med := tl.medianWallLocked()
	if med <= 0 || float64(s.WallNs) <= tl.cfg.Factor*float64(med) {
		rs.strikes = 0
		tl.maybeClearLocked(rs, s)
		return
	}
	rs.strikes++
	if rs.strikes >= tl.cfg.Strikes && !rs.Straggler {
		rs.Straggler = true
		rs.Reason = "step-time"
		tl.flags++
		Add(cStragglerFlags, 1)
		log.Printf("WARN: obs: rank %d straggling: step %d wall %.1fms > %.1f× median %.1fms (%d consecutive)",
			s.Rank, s.Step, float64(s.WallNs)/1e6, tl.cfg.Factor, float64(med)/1e6, rs.strikes)
		flight.Log("straggler", int(s.Rank), int(s.Step), rs.Reason)
	}
}

func (tl *ClusterTimeline) evalQueueLocked(rs *RankState, s StepSample) {
	if s.QueueDepth > tl.cfg.QueueFloor && s.QueueDepth > rs.lastQueue {
		rs.queueStrikes++
	} else {
		rs.queueStrikes = 0
	}
	rs.lastQueue = s.QueueDepth
	if rs.queueStrikes >= tl.cfg.QueueStrikes && !rs.Straggler {
		rs.Straggler = true
		rs.Reason = "queue-growth"
		tl.flags++
		Add(cStragglerFlags, 1)
		log.Printf("WARN: obs: rank %d straggling: sender queue grew %d samples in a row to depth %d",
			s.Rank, rs.queueStrikes, s.QueueDepth)
		flight.Log("straggler", int(s.Rank), int(s.Step), rs.Reason)
	}
}

// maybeClearLocked clears a flag once both detectors are quiet again.
func (tl *ClusterTimeline) maybeClearLocked(rs *RankState, s StepSample) {
	if rs.Straggler && rs.strikes == 0 && rs.queueStrikes == 0 {
		rs.Straggler = false
		log.Printf("obs: rank %d caught up (straggler flag cleared at step %d)", s.Rank, s.Step)
		flight.Log("straggler_clear", int(s.Rank), int(s.Step), rs.Reason)
		rs.Reason = ""
	}
}

// ClusterSnapshot is the /debug/cluster JSON shape.
type ClusterSnapshot struct {
	TakenNs    int64               `json:"taken_ns"`
	Ranks      map[int64]RankState `json:"ranks"`
	Stragglers []int64             `json:"stragglers"`
	FlagsTotal int64               `json:"straggler_flags_total"`
}

// Snapshot copies the timeline for serving; allocates (cold path).
func (tl *ClusterTimeline) Snapshot() ClusterSnapshot {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	snap := ClusterSnapshot{
		TakenNs:    time.Now().UnixNano(),
		Ranks:      make(map[int64]RankState, len(tl.ranks)),
		FlagsTotal: tl.flags,
	}
	for r, rs := range tl.ranks {
		snap.Ranks[r] = *rs
		if rs.Straggler {
			snap.Stragglers = append(snap.Stragglers, r)
		}
	}
	sort.Slice(snap.Stragglers, func(i, j int) bool { return snap.Stragglers[i] < snap.Stragglers[j] })
	return snap
}

// IsStraggler reports whether a rank is currently flagged.
func (tl *ClusterTimeline) IsStraggler(rank int64) bool {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	rs := tl.ranks[rank]
	return rs != nil && rs.Straggler
}

// FlagCount returns total flag transitions (tests and gauges).
func (tl *ClusterTimeline) FlagCount() int64 {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.flags
}
