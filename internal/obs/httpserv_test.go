package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsServer(t *testing.T) {
	resetStepsForTest()
	tl := NewClusterTimeline(StragglerConfig{})
	tl.Ingest(StepSample{Rank: 0, Step: 9, WallNs: 12e6, ComputeNs: 8e6, WireNs: 3e6,
		IdleNs: 1e6, BytesSent: 4096, BytesRecvd: 2048, QueueDepth: 1, PoolHit: 9, PoolMiss: 1, Allocs: 100})
	tl.Ingest(StepSample{Rank: 1, Step: 9, WallNs: 13e6})

	ms, err := StartMetricsServer("127.0.0.1:0", tl)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr()

	code, body := httpGet(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		`jaxpp_step_total{rank="0"} 10`,
		`jaxpp_step_total{rank="1"} 10`,
		`jaxpp_step_wall_ms{rank="0"} 12`,
		`jaxpp_pool_hit_rate_pct{rank="0"} 90`,
		`jaxpp_straggler{rank="0"} 0`,
		"jaxpp_ranks 2",
		"jaxpp_straggler_flags_total 0",
		"# TYPE jaxpp_step_total counter",
		"jaxpp_obs_counter{name=",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full body:\n%s", body)
	}

	code, body = httpGet(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	ms.SetHealth(false, "transport poisoned")
	code, body = httpGet(t, base+"/healthz")
	if code != 503 || !strings.Contains(body, "transport poisoned") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}
	ms.SetHealth(true, "")

	code, body = httpGet(t, base+"/debug/cluster")
	if code != 200 {
		t.Fatalf("/debug/cluster status %d", code)
	}
	var snap struct {
		Ranks      map[string]RankState `json:"ranks"`
		Stragglers []int64              `json:"stragglers"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/cluster not JSON: %v\n%s", err, body)
	}
	if len(snap.Ranks) != 2 || snap.Ranks["0"].Last.Step != 9 {
		t.Fatalf("/debug/cluster ranks: %+v", snap.Ranks)
	}
}

// The /metrics view must follow the live ring: record more steps, scrape
// again, counters advance — the property the CI smoke asserts across ranks.
func TestMetricsServerFollowsRing(t *testing.T) {
	resetStepsForTest()
	EnableSteps()
	defer DisableSteps()
	tl := NewClusterTimeline(StragglerConfig{})
	ms, err := StartMetricsServer("127.0.0.1:0", tl)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	base := "http://" + ms.Addr()

	RecordStep(StepSample{Rank: 0, Step: 0, WallNs: 1e6})
	_, body := httpGet(t, base+"/metrics")
	if !strings.Contains(body, `jaxpp_step_total{rank="0"} 1`) {
		t.Fatalf("first scrape missing step 1:\n%s", body)
	}
	for s := int64(1); s <= 4; s++ {
		RecordStep(StepSample{Rank: 0, Step: s, WallNs: 1e6})
	}
	_, body = httpGet(t, base+"/metrics")
	if !strings.Contains(body, `jaxpp_step_total{rank="0"} 5`) {
		t.Fatalf("second scrape did not advance:\n%s", body)
	}
}

func TestMetricsServerBadAddr(t *testing.T) {
	if _, err := StartMetricsServer("256.0.0.1:bad", NewClusterTimeline(StragglerConfig{})); err == nil {
		t.Fatal("bad address accepted")
	}
}

func ExampleStepSample_PoolHitPct() {
	s := StepSample{PoolHit: 3, PoolMiss: 1}
	fmt.Println(s.PoolHitPct())
	// Output: 75
}
