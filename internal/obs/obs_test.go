package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// reset restores a clean registry between tests (aggregates, counters, span
// rings); scope/counter names persist, which mirrors production.
func reset() {
	Disable()
	SnapshotAndReset()
}

func TestDisabledTrackStopZeroAllocs(t *testing.T) {
	reset()
	s := Scope("test/disabled_allocs")
	c := Counter("test/disabled_counter")
	allocs := testing.AllocsPerRun(1000, func() {
		h := Track(s)
		h.Stop()
		Add(c, 1)
		Observe(s, 3)
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEnabledTrackStopZeroAllocs(t *testing.T) {
	reset()
	s := Scope("test/enabled_allocs")
	Enable()
	defer reset()
	allocs := testing.AllocsPerRun(1000, func() {
		h := TrackTid(s, 3)
		h.StopBytes(64)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestDisabledRecordsNothing(t *testing.T) {
	reset()
	s := Scope("test/disabled_records")
	c := Counter("test/disabled_records_counter")
	h := Track(s)
	h.Stop()
	Add(c, 7)
	Observe(s, 9)
	snap := SnapshotAndReset()
	if _, ok := snap.ScopeByName("test/disabled_records"); ok {
		t.Fatal("disabled Track/Observe still recorded scope stats")
	}
	if v := snap.CounterValue("test/disabled_records_counter"); v != 0 {
		t.Fatalf("disabled Add recorded %d", v)
	}
	if len(snap.Spans) != 0 {
		t.Fatalf("disabled run produced %d spans", len(snap.Spans))
	}
}

func TestSnapshotAggregatesAndResets(t *testing.T) {
	reset()
	s := Scope("seg/0")
	c := Counter("wire/frames_sent")
	Enable()
	defer reset()

	for i := 0; i < 5; i++ {
		h := TrackTid(s, 1)
		time.Sleep(time.Millisecond)
		h.StopBytes(100)
	}
	Add(c, 42)

	snap := SnapshotAndReset()
	st, ok := snap.ScopeByName("seg/0")
	if !ok {
		t.Fatal("scope seg/0 missing from snapshot")
	}
	if st.Count != 5 {
		t.Fatalf("count = %d, want 5", st.Count)
	}
	if st.Total < 5*int64(time.Millisecond) {
		t.Fatalf("total = %v, want >= 5ms", time.Duration(st.Total))
	}
	if st.Min <= 0 || st.Max < st.Min || st.Total < st.Max {
		t.Fatalf("inconsistent min/max/total: %+v", st)
	}
	if st.Bytes != 500 {
		t.Fatalf("bytes = %d, want 500", st.Bytes)
	}
	if v := snap.CounterValue("wire/frames_sent"); v != 42 {
		t.Fatalf("counter = %d, want 42", v)
	}
	if len(snap.Spans) != 5 {
		t.Fatalf("spans = %d, want 5", len(snap.Spans))
	}
	for _, sp := range snap.Spans {
		if sp.Scope != "seg/0" || sp.Tid != 1 || sp.DurUs <= 0 {
			t.Fatalf("bad span: %+v", sp)
		}
	}

	// Reset really reset: a second snapshot is empty.
	snap2 := SnapshotAndReset()
	if len(snap2.Scopes) != 0 || len(snap2.Counters) != 0 || len(snap2.Spans) != 0 {
		t.Fatalf("second snapshot not empty: %+v", snap2)
	}
}

func TestObserve(t *testing.T) {
	reset()
	s := Scope("wire/send_queue")
	Enable()
	defer reset()
	for _, v := range []int64{3, 1, 7} {
		Observe(s, v)
	}
	snap := SnapshotAndReset()
	st, ok := snap.ScopeByName("wire/send_queue")
	if !ok {
		t.Fatal("observe scope missing")
	}
	if st.Count != 3 || st.Total != 11 || st.Min != 1 || st.Max != 7 {
		t.Fatalf("observe stats wrong: %+v", st)
	}
	if len(snap.Spans) != 0 {
		t.Fatal("Observe must not record trace spans")
	}
}

func TestPeekDoesNotReset(t *testing.T) {
	reset()
	s := Scope("test/peek")
	Enable()
	defer reset()
	h := Track(s)
	h.Stop()
	p := Peek()
	if _, ok := p.ScopeByName("test/peek"); !ok {
		t.Fatal("Peek missed the recorded scope")
	}
	snap := SnapshotAndReset()
	if st, ok := snap.ScopeByName("test/peek"); !ok || st.Count != 1 {
		t.Fatalf("Peek consumed state: %+v ok=%v", snap, ok)
	}
}

func TestSpanRingDropsWhenFull(t *testing.T) {
	reset()
	s := Scope("test/ring_full")
	Enable()
	defer reset()
	// All on tid 0 → one shard; overflow by 100.
	n := spanShardCap + 100
	for i := 0; i < n; i++ {
		TrackTid(s, 0).Stop()
	}
	snap := SnapshotAndReset()
	if len(snap.Spans) != spanShardCap {
		t.Fatalf("spans = %d, want %d", len(snap.Spans), spanShardCap)
	}
	if snap.Dropped != 100 {
		t.Fatalf("dropped = %d, want 100", snap.Dropped)
	}
	st, _ := snap.ScopeByName("test/ring_full")
	if st.Count != int64(n) {
		t.Fatalf("aggregate count = %d, want %d (aggregates must not drop)", st.Count, n)
	}
}

// TestParallelRecording exercises concurrent span recording from many
// goroutines across shards, under the race detector in CI.
func TestParallelRecording(t *testing.T) {
	reset()
	s := Scope("test/parallel")
	c := Counter("test/parallel_counter")
	Enable()
	defer reset()

	const workers = 16
	const per = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h := TrackTid(s, tid)
				Add(c, 1)
				h.StopBytes(8)
			}
		}(w)
	}
	wg.Wait()

	snap := SnapshotAndReset()
	st, ok := snap.ScopeByName("test/parallel")
	if !ok || st.Count != workers*per {
		t.Fatalf("count = %d, want %d", st.Count, workers*per)
	}
	if v := snap.CounterValue("test/parallel_counter"); v != workers*per {
		t.Fatalf("counter = %d, want %d", v, workers*per)
	}
	if st.Bytes != workers*per*8 {
		t.Fatalf("bytes = %d, want %d", st.Bytes, workers*per*8)
	}
	// 16 tids fold onto 8 shards of 4096: all 3200 spans must fit.
	if len(snap.Spans)+int(snap.Dropped) != workers*per {
		t.Fatalf("spans %d + dropped %d != %d", len(snap.Spans), snap.Dropped, workers*per)
	}
	if snap.Dropped != 0 {
		t.Fatalf("unexpected drops: %d", snap.Dropped)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reset()
	s := Scope("seg/1")
	Enable()
	defer reset()
	TrackTid(s, 2).StopBytes(16)
	snap := SnapshotAndReset()
	snap.Rank = 3
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rank != 3 || len(back.Spans) != 1 || back.Spans[0].Scope != "seg/1" || back.Spans[0].Tid != 2 {
		t.Fatalf("round trip mangled snapshot: %+v", back)
	}
}

func TestBreakdownClassification(t *testing.T) {
	snap := &Snapshot{Scopes: []ScopeStats{
		{Name: "seg/2", Total: 100},
		{Name: "step/sgd", Total: 50},
		{Name: "coll/reduce", Total: 30},
		{Name: "wire/encode", Total: 20},
		{Name: "coll/wait", Total: 40},
		{Name: "actor/recv", Total: 60},
		{Name: "step/grad_allreduce", Total: 999}, // envelope: excluded
	}}
	compute, wire, idle := snap.Breakdown()
	if compute != 150 || wire != 50 || idle != 100 {
		t.Fatalf("breakdown = %v/%v/%v, want 150/50/100", compute, wire, idle)
	}
}

func TestScopeIdempotentRegistration(t *testing.T) {
	a := Scope("test/idempotent")
	b := Scope("test/idempotent")
	if a != b {
		t.Fatalf("Scope returned different IDs: %d vs %d", a, b)
	}
	ca := Counter("test/idempotent_c")
	cb := Counter("test/idempotent_c")
	if ca != cb {
		t.Fatalf("Counter returned different IDs: %d vs %d", ca, cb)
	}
}

// BenchmarkTrackStopDisabled pins the disabled-gate overhead: the whole
// Track+Stop pair should cost a couple of atomic loads (single-digit ns) and
// 0 allocs.
func BenchmarkTrackStopDisabled(b *testing.B) {
	reset()
	s := Scope("bench/disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := Track(s)
		h.Stop()
	}
}

func BenchmarkTrackStopEnabled(b *testing.B) {
	reset()
	s := Scope("bench/enabled")
	Enable()
	b.Cleanup(reset)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := Track(s)
		h.Stop()
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	reset()
	c := Counter("bench/counter_disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Add(c, 1)
	}
}
