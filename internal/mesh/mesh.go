// Package mesh implements logical device meshes with named axes and
// partition specifications — the JAX/GSPMD sharding model described in §2.1
// of the paper. A tensor axis is either mapped to a named mesh axis (sharded)
// or unmapped (replicated across the remaining mesh dimensions).
package mesh

import (
	"fmt"
	"strings"
)

// Axis is one named dimension of a device mesh.
type Axis struct {
	Name string
	Size int
}

// Mesh is a logical multi-dimensional arrangement of devices. Device IDs are
// implicit: row-major linearization of the axis coordinates, offset by Base.
type Mesh struct {
	Axes []Axis
	Base int // first device ID (lets actors own disjoint device ranges)
}

// New builds a mesh from alternating name/size pairs.
func New(axes ...Axis) (*Mesh, error) {
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Size <= 0 {
			return nil, fmt.Errorf("mesh: axis %q has non-positive size %d", a.Name, a.Size)
		}
		if a.Name == "" {
			return nil, fmt.Errorf("mesh: axis with empty name")
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("mesh: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	return &Mesh{Axes: append([]Axis(nil), axes...)}, nil
}

// MustNew is New panicking on error.
func MustNew(axes ...Axis) *Mesh {
	m, err := New(axes...)
	if err != nil {
		panic(err)
	}
	return m
}

// NumDevices returns the total device count.
func (m *Mesh) NumDevices() int {
	n := 1
	for _, a := range m.Axes {
		n *= a.Size
	}
	return n
}

// AxisSize returns the size of the named axis, or an error if absent.
func (m *Mesh) AxisSize(name string) (int, error) {
	for _, a := range m.Axes {
		if a.Name == name {
			return a.Size, nil
		}
	}
	return 0, fmt.Errorf("mesh: no axis %q", name)
}

// AxisIndex returns the position of the named axis, or -1.
func (m *Mesh) AxisIndex(name string) int {
	for i, a := range m.Axes {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Coords returns the mesh coordinates of device slot i (0 <= i < NumDevices).
func (m *Mesh) Coords(i int) []int {
	c := make([]int, len(m.Axes))
	for d := len(m.Axes) - 1; d >= 0; d-- {
		c[d] = i % m.Axes[d].Size
		i /= m.Axes[d].Size
	}
	return c
}

// DeviceID returns the global device ID at the given coordinates.
func (m *Mesh) DeviceID(coords []int) int {
	id := 0
	for d, a := range m.Axes {
		id = id*a.Size + coords[d]
	}
	return m.Base + id
}

// String renders the mesh like [("data", 4) ("model", 8)].
func (m *Mesh) String() string {
	parts := make([]string, len(m.Axes))
	for i, a := range m.Axes {
		parts[i] = fmt.Sprintf("(%q, %d)", a.Name, a.Size)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Spec is a partition specification: one entry per tensor axis, naming the
// mesh axis the tensor axis is sharded over, or "" for replicated.
type Spec []string

// Replicated returns a fully replicated spec of the given rank.
func Replicated(rank int) Spec { return make(Spec, rank) }

// P builds a Spec from mesh-axis names ("" = replicated on that tensor axis).
func P(names ...string) Spec { return Spec(names) }

// Equal reports whether two specs are identical.
func (s Spec) Equal(o Spec) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// IsReplicated reports whether no tensor axis is sharded.
func (s Spec) IsReplicated() bool {
	for _, n := range s {
		if n != "" {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (s Spec) Clone() Spec { return append(Spec(nil), s...) }

// String renders like ("data", None).
func (s Spec) String() string {
	parts := make([]string, len(s))
	for i, n := range s {
		if n == "" {
			parts[i] = "None"
		} else {
			parts[i] = fmt.Sprintf("%q", n)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Validate checks the spec against a mesh and a tensor shape: referenced axes
// must exist, no mesh axis may be used twice, and each sharded dimension must
// be divisible by the mesh axis size.
func (s Spec) Validate(m *Mesh, shape []int) error {
	if len(s) != len(shape) {
		return fmt.Errorf("mesh: spec %s has rank %d, tensor has rank %d", s, len(s), len(shape))
	}
	used := map[string]bool{}
	for i, name := range s {
		if name == "" {
			continue
		}
		size, err := m.AxisSize(name)
		if err != nil {
			return err
		}
		if used[name] {
			return fmt.Errorf("mesh: axis %q used twice in spec %s", name, s)
		}
		used[name] = true
		if shape[i]%size != 0 {
			return fmt.Errorf("mesh: dim %d (%d) not divisible by axis %q size %d", i, shape[i], name, size)
		}
	}
	return nil
}

// ShardShape returns the per-device shape of a tensor with the given global
// shape under this spec.
func (s Spec) ShardShape(m *Mesh, shape []int) ([]int, error) {
	if err := s.Validate(m, shape); err != nil {
		return nil, err
	}
	out := append([]int(nil), shape...)
	for i, name := range s {
		if name == "" {
			continue
		}
		size, _ := m.AxisSize(name)
		out[i] /= size
	}
	return out, nil
}

// ReplicationFactor returns the number of devices holding identical copies of
// each shard: the product of mesh axes not referenced by the spec.
func (s Spec) ReplicationFactor(m *Mesh) int {
	used := map[string]bool{}
	for _, n := range s {
		if n != "" {
			used[n] = true
		}
	}
	f := 1
	for _, a := range m.Axes {
		if !used[a.Name] {
			f *= a.Size
		}
	}
	return f
}

// NamedSharding maps logical axis names used in model code (e.g. "batch",
// "mlp") to mesh axis names (e.g. "data", "model") — the partitioning
// specification of Fig. 1b. Logical names absent from the map are replicated.
type NamedSharding map[string]string

// Resolve converts logical axis names attached to a tensor into a concrete
// Spec for the mesh, dropping mappings to axes of size 1 (which XLA treats as
// replication).
func (ns NamedSharding) Resolve(m *Mesh, logicalAxes []string) (Spec, error) {
	spec := make(Spec, len(logicalAxes))
	for i, la := range logicalAxes {
		if la == "" {
			continue
		}
		ma, ok := ns[la]
		if !ok {
			continue // unbound logical axis: replicated
		}
		size, err := m.AxisSize(ma)
		if err != nil {
			return nil, fmt.Errorf("mesh: logical axis %q maps to unknown mesh axis %q", la, ma)
		}
		if size == 1 {
			continue
		}
		spec[i] = ma
	}
	return spec, nil
}
