package mesh

import (
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Axis{"data", 0}); err == nil {
		t.Fatal("want error for size 0")
	}
	if _, err := New(Axis{"", 2}); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := New(Axis{"a", 2}, Axis{"a", 2}); err == nil {
		t.Fatal("want error for duplicate axis")
	}
	m, err := New(Axis{"data", 4}, Axis{"model", 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDevices() != 32 {
		t.Fatalf("devices=%d", m.NumDevices())
	}
}

func TestAxisLookup(t *testing.T) {
	m := MustNew(Axis{"data", 4}, Axis{"model", 8})
	if s, err := m.AxisSize("model"); err != nil || s != 8 {
		t.Fatalf("model size %d %v", s, err)
	}
	if _, err := m.AxisSize("nope"); err == nil {
		t.Fatal("want error")
	}
	if m.AxisIndex("data") != 0 || m.AxisIndex("model") != 1 || m.AxisIndex("x") != -1 {
		t.Fatal("bad indices")
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	m := MustNew(Axis{"a", 3}, Axis{"b", 4})
	for d := 0; d < m.NumDevices(); d++ {
		c := m.Coords(d)
		if got := m.DeviceID(c); got != d {
			t.Fatalf("device %d -> coords %v -> %d", d, c, got)
		}
	}
	m.Base = 100
	if m.DeviceID([]int{0, 0}) != 100 {
		t.Fatal("base offset ignored")
	}
}

func TestSpecValidate(t *testing.T) {
	m := MustNew(Axis{"data", 4}, Axis{"model", 8})
	shape := []int{16, 32}
	if err := P("data", "model").Validate(m, shape); err != nil {
		t.Fatal(err)
	}
	if err := P("data").Validate(m, shape); err == nil {
		t.Fatal("want rank mismatch error")
	}
	if err := P("nope", "").Validate(m, shape); err == nil {
		t.Fatal("want unknown axis error")
	}
	if err := P("data", "data").Validate(m, shape); err == nil {
		t.Fatal("want duplicate axis error")
	}
	if err := P("data", "").Validate(m, []int{6, 32}); err == nil {
		t.Fatal("want divisibility error")
	}
}

func TestShardShape(t *testing.T) {
	m := MustNew(Axis{"data", 4}, Axis{"model", 8})
	// The three cases from §2.1 of the paper, A.shape = (n, m) = (16, 32).
	cases := []struct {
		spec Spec
		want []int
	}{
		{P("", "model"), []int{16, 4}},    // column sharding
		{P("data", ""), []int{4, 32}},     // row sharding
		{P("data", "model"), []int{4, 4}}, // 2D sharding
	}
	for _, c := range cases {
		got, err := c.spec.ShardShape(m, []int{16, 32})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != c.want[0] || got[1] != c.want[1] {
			t.Fatalf("spec %s: got %v want %v", c.spec, got, c.want)
		}
	}
}

func TestReplicationFactor(t *testing.T) {
	m := MustNew(Axis{"data", 4}, Axis{"model", 8})
	if f := P("", "model").ReplicationFactor(m); f != 4 {
		t.Fatalf("col sharding replication %d, want 4 (across data)", f)
	}
	if f := P("data", "model").ReplicationFactor(m); f != 1 {
		t.Fatalf("2D sharding replication %d", f)
	}
	if f := Replicated(2).ReplicationFactor(m); f != 32 {
		t.Fatalf("full replication %d", f)
	}
}

func TestNamedShardingResolve(t *testing.T) {
	m := MustNew(Axis{"data", 2}, Axis{"model", 2})
	ns := NamedSharding{"batch": "data", "mlp": "model"}
	spec, err := ns.Resolve(m, []string{"batch", "emb"})
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(P("data", "")) {
		t.Fatalf("spec=%s", spec)
	}
	spec, err = ns.Resolve(m, []string{"emb", "mlp"})
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Equal(P("", "model")) {
		t.Fatalf("spec=%s", spec)
	}
}

func TestNamedShardingSize1AxisReplicates(t *testing.T) {
	// Mesh [("data", 2) ("model", 1)]: mlp maps to a size-1 axis, so weights
	// end up replicated — the DP instantiation of Fig. 1c (top).
	m := MustNew(Axis{"data", 2}, Axis{"model", 1})
	ns := NamedSharding{"batch": "data", "mlp": "model"}
	spec, err := ns.Resolve(m, []string{"emb", "mlp"})
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsReplicated() {
		t.Fatalf("weights should be replicated under model=1, got %s", spec)
	}
}

func TestNamedShardingUnknownMeshAxis(t *testing.T) {
	m := MustNew(Axis{"data", 2})
	ns := NamedSharding{"batch": "bogus"}
	if _, err := ns.Resolve(m, []string{"batch"}); err == nil {
		t.Fatal("want error")
	}
}

func TestSpecStringAndMeshString(t *testing.T) {
	m := MustNew(Axis{"data", 4}, Axis{"model", 8})
	if s := m.String(); s != `[("data", 4) ("model", 8)]` {
		t.Fatalf("mesh string %q", s)
	}
	if s := P("data", "").String(); s != `("data", None)` {
		t.Fatalf("spec string %q", s)
	}
}
