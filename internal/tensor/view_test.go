package tensor

import "testing"

// TestViewRange0AliasesWithoutCopy pins the zero-copy contract: a row view
// reads the parent's storage in place (writes to the parent are visible) and
// reports the sliced shape.
func TestViewRange0AliasesWithoutCopy(t *testing.T) {
	a := MustFromSlice([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 4, 2)
	v := ViewRange0(a, 1, 3)
	if !ShapeEq(v.Shape(), []int{2, 2}) {
		t.Fatalf("view shape %v, want [2 2]", v.Shape())
	}
	if v.At(0, 0) != 2 || v.At(1, 1) != 5 {
		t.Fatalf("view contents wrong: %v", v)
	}
	a.Set(42, 1, 0)
	if v.At(0, 0) != 42 {
		t.Fatalf("view did not observe parent write: zero-copy aliasing broken")
	}
	if !v.Borrowed() {
		t.Fatalf("row view must be marked borrowed")
	}
	if SliceRange0(a, 1, 3).Borrowed() {
		t.Fatalf("SliceRange0 copies; it must not be borrowed")
	}
}

// TestBorrowedViewRefusesMutation locks every mutating path out of borrowed
// views: destination-passing kernels, CopyFrom, and pool recycling.
func TestBorrowedViewRefusesMutation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a borrowed view did not panic", name)
			}
		}()
		f()
	}
	fresh := func() (*Tensor, *Tensor) {
		base := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
		return base, ViewRange0(base, 0, 2)
	}
	_, v := fresh()
	x := Ones(2, 2)
	mustPanic("AddInto", func() { AddInto(v, x, x) })
	mustPanic("MulInto", func() { MulInto(v, x, x) })
	mustPanic("ScaleInto", func() { ScaleInto(v, x, 2) })
	mustPanic("ReLUInto", func() { ReLUInto(v, x) })
	mustPanic("MatMulInto", func() { MatMulInto(v, x, x) })
	mustPanic("TransposeInto", func() { TransposeInto(v, x) })
	mustPanic("CopyFrom", func() { v.CopyFrom([]float64{9, 9, 9, 9}) })

	// A reshape of a borrowed view stays borrowed: it is the same storage.
	base, v2 := fresh()
	r := Reshape(v2, 4)
	if !r.Borrowed() {
		t.Fatalf("Reshape of a borrowed view must stay borrowed")
	}
	mustPanic("ScaleInto-through-reshape", func() { ScaleInto(r, Ones(4), 2) })

	// Clone detaches: the copy is mutable and writes don't reach the parent.
	c := v2.Clone()
	if c.Borrowed() {
		t.Fatalf("Clone of a borrowed view must be independently owned")
	}
	ScaleInto(c, c, 10)
	if base.At(0, 0) != 1 {
		t.Fatalf("mutating a clone reached the parent")
	}
}

// TestRecycleIgnoresBorrowedViews proves a recycled view's storage never
// re-enters the scratch pool: the next same-bucket GetScratch must not hand
// out storage aliasing the view's parent.
func TestRecycleIgnoresBorrowedViews(t *testing.T) {
	base := New(4, 32) // rows of 32: a 2-row view is a 64-element bucket
	v := ViewRange0(base, 0, 2)
	Recycle(v)
	s := GetScratch(64)
	for i := range s.Data() {
		s.Data()[i] = 777
	}
	for i, got := range base.Data() {
		if got != 0 {
			t.Fatalf("scratch write reached the view's parent at %d: borrowed storage was pooled", i)
		}
	}
	Recycle(s)
}
