package tensor

import (
	"fmt"
	"math"
)

// Elementwise kernels are specialized per operator (no closure dispatch in
// the hot loops) and come in two forms: pure (allocate a result) and
// destination-passing *Into (write into caller-owned storage, which may alias
// an operand). The interpreter's compiled programs and the runtime's gradient
// accumulation use the Into forms on storage they own.

// checkBinShapes panics unless a and b are elementwise-compatible (equal
// shapes or one scalar).
func checkBinShapes(name string, a, b *Tensor) {
	if !SameShape(a, b) && a.Rank() != 0 && b.Rank() != 0 {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", name, a.shape, b.shape))
	}
}

// checkDst panics unless dst has exactly the given shape and is writable
// (not a borrowed view of caller-owned storage).
func checkDst(name string, dst *Tensor, shape []int) {
	if !ShapeEq(dst.shape, shape) {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want %v", name, dst.shape, shape))
	}
	if dst.borrowed {
		panic("tensor: " + name + " destination is a borrowed view")
	}
}

// checkDst2 is checkDst for rank-2 destinations. Taking the dims as ints
// keeps the expected shape off the heap (a []int{m, n} literal escapes via
// the panic path), which matters in kernels called hundreds of times per
// step.
func checkDst2(name string, dst *Tensor, m, n int) {
	if len(dst.shape) != 2 || dst.shape[0] != m || dst.shape[1] != n {
		panic(fmt.Sprintf("tensor: %s destination shape %v, want %v", name, dst.shape, []int{m, n}))
	}
	if dst.borrowed {
		panic("tensor: " + name + " destination is a borrowed view")
	}
}

// binShape returns the broadcast result shape of a and b.
func binShape(a, b *Tensor) []int {
	if a.Rank() != 0 {
		return a.shape
	}
	return b.shape
}

// Add returns a + b elementwise. Shapes must match exactly, or one operand
// may be a scalar (rank 0), which broadcasts.
func Add(a, b *Tensor) *Tensor {
	checkBinShapes("Add", a, b)
	out := New(binShape(a, b)...)
	AddInto(out, a, b)
	return out
}

// AddInto stores a + b into dst (dst may alias a or b).
func AddInto(dst, a, b *Tensor) {
	checkBinShapes("AddInto", a, b)
	checkDst("AddInto", dst, binShape(a, b))
	switch {
	case SameShape(a, b):
		for i, x := range a.data {
			dst.data[i] = x + b.data[i]
		}
	case b.Rank() == 0:
		y := b.data[0]
		for i, x := range a.data {
			dst.data[i] = x + y
		}
	default:
		x := a.data[0]
		for i, y := range b.data {
			dst.data[i] = x + y
		}
	}
}

// Sub returns a - b elementwise with scalar broadcasting.
func Sub(a, b *Tensor) *Tensor {
	checkBinShapes("Sub", a, b)
	out := New(binShape(a, b)...)
	SubInto(out, a, b)
	return out
}

// SubInto stores a - b into dst (dst may alias a or b).
func SubInto(dst, a, b *Tensor) {
	checkBinShapes("SubInto", a, b)
	checkDst("SubInto", dst, binShape(a, b))
	switch {
	case SameShape(a, b):
		for i, x := range a.data {
			dst.data[i] = x - b.data[i]
		}
	case b.Rank() == 0:
		y := b.data[0]
		for i, x := range a.data {
			dst.data[i] = x - y
		}
	default:
		x := a.data[0]
		for i, y := range b.data {
			dst.data[i] = x - y
		}
	}
}

// Mul returns a * b elementwise with scalar broadcasting.
func Mul(a, b *Tensor) *Tensor {
	checkBinShapes("Mul", a, b)
	out := New(binShape(a, b)...)
	MulInto(out, a, b)
	return out
}

// MulInto stores a * b into dst (dst may alias a or b).
func MulInto(dst, a, b *Tensor) {
	checkBinShapes("MulInto", a, b)
	checkDst("MulInto", dst, binShape(a, b))
	switch {
	case SameShape(a, b):
		for i, x := range a.data {
			dst.data[i] = x * b.data[i]
		}
	case b.Rank() == 0:
		y := b.data[0]
		for i, x := range a.data {
			dst.data[i] = x * y
		}
	default:
		x := a.data[0]
		for i, y := range b.data {
			dst.data[i] = x * y
		}
	}
}

// Div returns a / b elementwise with scalar broadcasting.
func Div(a, b *Tensor) *Tensor {
	checkBinShapes("Div", a, b)
	out := New(binShape(a, b)...)
	switch {
	case SameShape(a, b):
		for i, x := range a.data {
			out.data[i] = x / b.data[i]
		}
	case b.Rank() == 0:
		y := b.data[0]
		for i, x := range a.data {
			out.data[i] = x / y
		}
	default:
		x := a.data[0]
		for i, y := range b.data {
			out.data[i] = x / y
		}
	}
	return out
}

// Maximum returns elementwise max(a, b) with scalar broadcasting.
func Maximum(a, b *Tensor) *Tensor {
	checkBinShapes("Maximum", a, b)
	out := New(binShape(a, b)...)
	switch {
	case SameShape(a, b):
		for i, x := range a.data {
			out.data[i] = math.Max(x, b.data[i])
		}
	case b.Rank() == 0:
		y := b.data[0]
		for i, x := range a.data {
			out.data[i] = math.Max(x, y)
		}
	default:
		x := a.data[0]
		for i, y := range b.data {
			out.data[i] = math.Max(x, y)
		}
	}
	return out
}

// Scale returns a * s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	ScaleInto(out, a, s)
	return out
}

// ScaleInto stores a * s into dst (dst may alias a).
func ScaleInto(dst, a *Tensor, s float64) {
	checkDst("ScaleInto", dst, a.shape)
	for i, x := range a.data {
		dst.data[i] = x * s
	}
}

// AxpyInto accumulates dst += s * a (the BLAS axpy kernel; gradient
// accumulation and optimizer updates are its callers).
func AxpyInto(dst, a *Tensor, s float64) {
	checkDst("AxpyInto", dst, a.shape)
	for i, x := range a.data {
		dst.data[i] += s * x
	}
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Map applies f elementwise. Specialized kernels below avoid this closure
// dispatch on hot paths; Map remains for cold transcendental ops.
func Map(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ReLU returns max(a, 0).
func ReLU(a *Tensor) *Tensor {
	out := New(a.shape...)
	ReLUInto(out, a)
	return out
}

// ReLUInto stores max(a, 0) into dst (dst may alias a).
func ReLUInto(dst, a *Tensor) {
	checkDst("ReLUInto", dst, a.shape)
	for i, x := range a.data {
		if x > 0 {
			dst.data[i] = x
		} else {
			dst.data[i] = 0
		}
	}
}

// ReLUMask returns 1 where a > 0 else 0 (the derivative mask of ReLU).
func ReLUMask(a *Tensor) *Tensor {
	out := New(a.shape...)
	ReLUMaskInto(out, a)
	return out
}

// ReLUMaskInto stores the ReLU derivative mask of a into dst (dst may alias a).
func ReLUMaskInto(dst, a *Tensor) {
	checkDst("ReLUMaskInto", dst, a.shape)
	for i, x := range a.data {
		if x > 0 {
			dst.data[i] = 1
		} else {
			dst.data[i] = 0
		}
	}
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor { return Map(a, math.Tanh) }

// Exp applies exp elementwise.
func Exp(a *Tensor) *Tensor { return Map(a, math.Exp) }

// Log applies natural log elementwise.
func Log(a *Tensor) *Tensor { return Map(a, math.Log) }

// matMulShapes validates rank-2 operands and returns (m, k, n).
func matMulShapes(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	if a.shape[1] != b.shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	return a.shape[0], a.shape[1], b.shape[1]
}

// matMulRows computes rows [lo, hi) of dst = a @ b (ikj loop order), zeroing
// the destination rows first so dst may hold scratch garbage.
func matMulRows(dst, a, b []float64, k, n, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = 0
		}
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// matMulGrain returns the minimum row-block size worth shipping to a worker:
// roughly 64k flops per block, so small matmuls stay on the calling
// goroutine.
func matMulGrain(k, n int) int {
	g := 32768 / (k*n + 1)
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul computes the matrix product of two rank-2 tensors (m,k)x(k,n)->(m,n),
// parallelized over row blocks on the shared worker pool for large operands.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := matMulShapes(a, b)
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto stores a @ b into dst. dst must not alias a or b.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := matMulShapes(a, b)
	checkDst2("MatMulInto", dst, m, n)
	if m < 2*matMulGrain(k, n) {
		// Small operands run inline; returning before the closure below is
		// built keeps the single-block case allocation-free.
		matMulRows(dst.data, a.data, b.data, k, n, 0, m)
		return
	}
	parallelFor(m, matMulGrain(k, n), func(lo, hi int) {
		matMulRows(dst.data, a.data, b.data, k, n, lo, hi)
	})
}

// MatMulReLUInto stores relu(a @ b) into dst — the fused matmul+activation
// kernel the interpreter emits when the IR permits. dst must not alias a or b.
func MatMulReLUInto(dst, a, b *Tensor) {
	m, k, n := matMulShapes(a, b)
	checkDst2("MatMulReLUInto", dst, m, n)
	if m < 2*matMulGrain(k, n) {
		matMulRows(dst.data, a.data, b.data, k, n, 0, m)
		reluSpan(dst.data, 0, m*n)
		return
	}
	parallelFor(m, matMulGrain(k, n), func(lo, hi int) {
		matMulRows(dst.data, a.data, b.data, k, n, lo, hi)
		reluSpan(dst.data, lo*n, hi*n)
	})
}

// reluSpan clamps data[lo:hi] at zero in place.
func reluSpan(data []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		if data[i] < 0 {
			data[i] = 0
		}
	}
}

// MatMulAddReLUInto stores relu(a @ b + c) into dst, fusing the projection,
// bias add, and activation in one pass over the output. c must either match
// the (m,n) result shape or be a scalar. dst must not alias a, b, or c.
func MatMulAddReLUInto(dst, a, b, c *Tensor) {
	m, k, n := matMulShapes(a, b)
	checkDst2("MatMulAddReLUInto", dst, m, n)
	if c.Rank() != 0 && (len(c.shape) != 2 || c.shape[0] != m || c.shape[1] != n) {
		panic(fmt.Sprintf("tensor: MatMulAddReLU addend shape %v, want %v or scalar", c.shape, []int{m, n}))
	}
	if m < 2*matMulGrain(k, n) {
		matMulRows(dst.data, a.data, b.data, k, n, 0, m)
		addReluSpan(dst.data, c, 0, m*n)
		return
	}
	parallelFor(m, matMulGrain(k, n), func(lo, hi int) {
		matMulRows(dst.data, a.data, b.data, k, n, lo, hi)
		addReluSpan(dst.data, c, lo*n, hi*n)
	})
}

// addReluSpan stores relu(data+c) over data[lo:hi] in place, with c either
// matching data's full extent or a scalar.
func addReluSpan(data []float64, c *Tensor, lo, hi int) {
	if c.Rank() == 0 {
		cv := c.data[0]
		for i := lo; i < hi; i++ {
			v := data[i] + cv
			if v < 0 {
				v = 0
			}
			data[i] = v
		}
		return
	}
	for i := lo; i < hi; i++ {
		v := data[i] + c.data[i]
		if v < 0 {
			v = 0
		}
		data[i] = v
	}
}

// MatMulAddReLU returns relu(a @ b + c) — the pure form of the fused kernel.
func MatMulAddReLU(a, b, c *Tensor) *Tensor {
	m, _, n := matMulShapes(a, b)
	out := New(m, n)
	MatMulAddReLUInto(out, a, b, c)
	return out
}

// Transpose returns the rank-2 transpose of a.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	TransposeInto(out, a)
	return out
}

// TransposeInto stores the rank-2 transpose of a into dst. dst must not
// alias a.
func TransposeInto(dst, a *Tensor) {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	checkDst2("TransposeInto", dst, n, m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			dst.data[j*m+i] = v
		}
	}
}

// Reshape returns a view of a with a new shape of equal element count. The
// view shares a's backing storage (reshape is free on every microbatch
// boundary); use ReshapeCopy when the result will be mutated.
func Reshape(a *Tensor, shape ...int) *Tensor {
	if NumElements(shape) != a.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", a.shape, shape))
	}
	// A view of a borrowed view borrows the same storage.
	return &Tensor{shape: cloneShape(shape), data: a.data, borrowed: a.borrowed}
}

// ReshapeCopy returns an independent copy of a with a new shape — the escape
// hatch for callers that mutate the result.
func ReshapeCopy(a *Tensor, shape ...int) *Tensor {
	if NumElements(shape) != a.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", a.shape, shape))
	}
	out := a.Clone()
	out.shape = cloneShape(shape)
	return out
}

// Sum reduces all elements to a scalar tensor.
func Sum(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	return Scalar(s)
}

// SumAxis0 sums over the leading axis: (d0, d1, ...) -> (d1, ...).
func SumAxis0(a *Tensor) *Tensor {
	if a.Rank() == 0 {
		return a.Clone()
	}
	out := New(a.shape[1:]...)
	SumAxis0Into(out, a)
	return out
}

// SumAxis0Into sums a over the leading axis into dst, overwriting it. dst
// must not alias a.
func SumAxis0Into(dst, a *Tensor) {
	if a.Rank() == 0 {
		panic("tensor: SumAxis0Into wants rank >= 1")
	}
	rest := a.shape[1:]
	checkDst("SumAxis0Into", dst, rest)
	stride := NumElements(rest)
	clear(dst.data)
	for i := 0; i < a.shape[0]; i++ {
		base := i * stride
		for j := 0; j < stride; j++ {
			dst.data[j] += a.data[base+j]
		}
	}
}

// MeanAxis0 averages over the leading axis.
func MeanAxis0(a *Tensor) *Tensor {
	return Scale(SumAxis0(a), 1/float64(a.shape[0]))
}

// Slice0 returns the i-th sub-tensor along axis 0: shape (d1, ...).
func Slice0(a *Tensor, i int) *Tensor {
	if a.Rank() == 0 {
		panic("tensor: cannot Slice0 a scalar")
	}
	if i < 0 || i >= a.shape[0] {
		panic(fmt.Sprintf("tensor: Slice0 index %d out of range for shape %v", i, a.shape))
	}
	rest := a.shape[1:]
	stride := NumElements(rest)
	out := New(rest...)
	copy(out.data, a.data[i*stride:(i+1)*stride])
	return out
}

// SliceRange0 returns rows [lo, hi) along axis 0.
func SliceRange0(a *Tensor, lo, hi int) *Tensor {
	if a.Rank() == 0 || lo < 0 || hi > a.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRange0 [%d,%d) invalid for shape %v", lo, hi, a.shape))
	}
	rest := a.shape[1:]
	stride := NumElements(rest)
	shape := append([]int{hi - lo}, rest...)
	out := New(shape...)
	copy(out.data, a.data[lo*stride:hi*stride])
	return out
}

// ViewRange0 returns rows [lo, hi) along axis 0 as a zero-copy borrowed view
// of a's storage. The view is marked borrowed: destination-passing kernels
// refuse to write through it and Recycle refuses to pool it, so handing a
// view to the runtime can never mutate or reclaim the caller's batch data.
// The caller must keep a alive and unmutated while views of it circulate.
func ViewRange0(a *Tensor, lo, hi int) *Tensor {
	if a.Rank() == 0 || lo < 0 || hi > a.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: ViewRange0 [%d,%d) invalid for shape %v", lo, hi, a.shape))
	}
	rest := a.shape[1:]
	stride := NumElements(rest)
	shape := make([]int, 0, len(a.shape))
	shape = append(append(shape, hi-lo), rest...)
	return &Tensor{shape: shape, data: a.data[lo*stride : hi*stride : hi*stride], borrowed: true}
}

// Stack0 concatenates tensors of identical shape along a new leading axis.
func Stack0(parts []*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: Stack0 of zero tensors")
	}
	for _, p := range parts[1:] {
		if !SameShape(p, parts[0]) {
			panic(fmt.Sprintf("tensor: Stack0 shape mismatch %v vs %v", p.shape, parts[0].shape))
		}
	}
	shape := append([]int{len(parts)}, parts[0].shape...)
	out := New(shape...)
	stride := parts[0].Size()
	for i, p := range parts {
		copy(out.data[i*stride:(i+1)*stride], p.data)
	}
	return out
}

// Concat0 concatenates tensors along the existing leading axis.
func Concat0(parts []*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: Concat0 of zero tensors")
	}
	rest := parts[0].shape[1:]
	rows := 0
	for _, p := range parts {
		if !ShapeEq(p.shape[1:], rest) {
			panic(fmt.Sprintf("tensor: Concat0 trailing-shape mismatch %v vs %v", p.shape, parts[0].shape))
		}
		rows += p.shape[0]
	}
	shape := append([]int{rows}, rest...)
	out := New(shape...)
	off := 0
	for _, p := range parts {
		copy(out.data[off:off+p.Size()], p.data)
		off += p.Size()
	}
	return out
}

// Softmax computes row-wise softmax of a rank-2 tensor.
func Softmax(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Softmax wants rank 2, got %v", a.shape))
	}
	out := New(a.shape...)
	SoftmaxInto(out, a)
	return out
}

// SoftmaxInto stores the row-wise softmax of a into dst (dst may alias a).
func SoftmaxInto(dst, a *Tensor) {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Softmax wants rank 2, got %v", a.shape))
	}
	checkDst("SoftmaxInto", dst, a.shape)
	m, n := a.shape[0], a.shape[1]
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		orow := dst.data[i*n : (i+1)*n]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			s += e
		}
		for j := range orow {
			orow[j] /= s
		}
	}
}

// CrossEntropy computes mean(-sum(targets * log softmax(logits), axis=1)) for
// rank-2 logits and same-shape target distributions.
func CrossEntropy(logits, targets *Tensor) *Tensor {
	if !SameShape(logits, targets) {
		panic(fmt.Sprintf("tensor: CrossEntropy shape mismatch %v vs %v", logits.shape, targets.shape))
	}
	p := GetScratchShaped(logits.shape...)
	SoftmaxInto(p, logits)
	m, n := logits.shape[0], logits.shape[1]
	loss := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t := targets.data[i*n+j]
			if t != 0 {
				loss -= t * math.Log(p.data[i*n+j]+1e-30)
			}
		}
	}
	Recycle(p)
	return Scalar(loss / float64(m))
}

// CrossEntropyGrad returns d(CrossEntropy)/d(logits) = (softmax - targets)/m.
func CrossEntropyGrad(logits, targets *Tensor) *Tensor {
	out := New(logits.shape...)
	CrossEntropyGradInto(out, logits, targets)
	return out
}

// CrossEntropyGradInto stores d(CrossEntropy)/d(logits) into dst (dst may
// alias logits, but not targets).
func CrossEntropyGradInto(dst, logits, targets *Tensor) {
	if !SameShape(logits, targets) {
		panic(fmt.Sprintf("tensor: CrossEntropy shape mismatch %v vs %v", logits.shape, targets.shape))
	}
	checkDst("CrossEntropyGradInto", dst, logits.shape)
	SoftmaxInto(dst, logits)
	inv := 1 / float64(logits.shape[0])
	for i, t := range targets.data {
		dst.data[i] = (dst.data[i] - t) * inv
	}
}
