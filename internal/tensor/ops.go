package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match exactly, or one operand
// may be a scalar (rank 0), which broadcasts.
func Add(a, b *Tensor) *Tensor {
	return zipBroadcast(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a - b elementwise with scalar broadcasting.
func Sub(a, b *Tensor) *Tensor {
	return zipBroadcast(a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns a * b elementwise with scalar broadcasting.
func Mul(a, b *Tensor) *Tensor {
	return zipBroadcast(a, b, func(x, y float64) float64 { return x * y })
}

// Div returns a / b elementwise with scalar broadcasting.
func Div(a, b *Tensor) *Tensor {
	return zipBroadcast(a, b, func(x, y float64) float64 { return x / y })
}

// Maximum returns elementwise max(a, b) with scalar broadcasting.
func Maximum(a, b *Tensor) *Tensor {
	return zipBroadcast(a, b, math.Max)
}

func zipBroadcast(a, b *Tensor, f func(x, y float64) float64) *Tensor {
	switch {
	case SameShape(a, b):
		out := New(a.shape...)
		for i := range a.data {
			out.data[i] = f(a.data[i], b.data[i])
		}
		return out
	case b.Rank() == 0:
		out := New(a.shape...)
		y := b.data[0]
		for i := range a.data {
			out.data[i] = f(a.data[i], y)
		}
		return out
	case a.Rank() == 0:
		out := New(b.shape...)
		x := a.data[0]
		for i := range b.data {
			out.data[i] = f(x, b.data[i])
		}
		return out
	default:
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.shape, b.shape))
	}
}

// Scale returns a * s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Map applies f elementwise.
func Map(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ReLU returns max(a, 0).
func ReLU(a *Tensor) *Tensor {
	return Map(a, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUMask returns 1 where a > 0 else 0 (the derivative mask of ReLU).
func ReLUMask(a *Tensor) *Tensor {
	return Map(a, func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	})
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor { return Map(a, math.Tanh) }

// Exp applies exp elementwise.
func Exp(a *Tensor) *Tensor { return Map(a, math.Exp) }

// Log applies natural log elementwise.
func Log(a *Tensor) *Tensor { return Map(a, math.Log) }

// MatMul computes the matrix product of two rank-2 tensors (m,k)x(k,n)->(m,n).
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul wants rank-2 operands, got %v x %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	// ikj loop order for cache friendliness.
	for i := 0; i < m; i++ {
		arow := a.data[i*k : (i+1)*k]
		orow := out.data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the rank-2 transpose of a.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = a.data[i*n+j]
		}
	}
	return out
}

// Reshape returns a view-copy of a with a new shape of equal element count.
func Reshape(a *Tensor, shape ...int) *Tensor {
	if NumElements(shape) != a.Size() {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", a.shape, shape))
	}
	out := a.Clone()
	out.shape = cloneShape(shape)
	return out
}

// Sum reduces all elements to a scalar tensor.
func Sum(a *Tensor) *Tensor {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	return Scalar(s)
}

// SumAxis0 sums over the leading axis: (d0, d1, ...) -> (d1, ...).
func SumAxis0(a *Tensor) *Tensor {
	if a.Rank() == 0 {
		return a.Clone()
	}
	rest := a.shape[1:]
	out := New(rest...)
	stride := NumElements(rest)
	for i := 0; i < a.shape[0]; i++ {
		base := i * stride
		for j := 0; j < stride; j++ {
			out.data[j] += a.data[base+j]
		}
	}
	return out
}

// MeanAxis0 averages over the leading axis.
func MeanAxis0(a *Tensor) *Tensor {
	return Scale(SumAxis0(a), 1/float64(a.shape[0]))
}

// Slice0 returns the i-th sub-tensor along axis 0: shape (d1, ...).
func Slice0(a *Tensor, i int) *Tensor {
	if a.Rank() == 0 {
		panic("tensor: cannot Slice0 a scalar")
	}
	if i < 0 || i >= a.shape[0] {
		panic(fmt.Sprintf("tensor: Slice0 index %d out of range for shape %v", i, a.shape))
	}
	rest := a.shape[1:]
	stride := NumElements(rest)
	out := New(rest...)
	copy(out.data, a.data[i*stride:(i+1)*stride])
	return out
}

// SliceRange0 returns rows [lo, hi) along axis 0.
func SliceRange0(a *Tensor, lo, hi int) *Tensor {
	if a.Rank() == 0 || lo < 0 || hi > a.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRange0 [%d,%d) invalid for shape %v", lo, hi, a.shape))
	}
	rest := a.shape[1:]
	stride := NumElements(rest)
	shape := append([]int{hi - lo}, rest...)
	out := New(shape...)
	copy(out.data, a.data[lo*stride:hi*stride])
	return out
}

// Stack0 concatenates tensors of identical shape along a new leading axis.
func Stack0(parts []*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: Stack0 of zero tensors")
	}
	for _, p := range parts[1:] {
		if !SameShape(p, parts[0]) {
			panic(fmt.Sprintf("tensor: Stack0 shape mismatch %v vs %v", p.shape, parts[0].shape))
		}
	}
	shape := append([]int{len(parts)}, parts[0].shape...)
	out := New(shape...)
	stride := parts[0].Size()
	for i, p := range parts {
		copy(out.data[i*stride:(i+1)*stride], p.data)
	}
	return out
}

// Concat0 concatenates tensors along the existing leading axis.
func Concat0(parts []*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: Concat0 of zero tensors")
	}
	rest := parts[0].shape[1:]
	rows := 0
	for _, p := range parts {
		if !ShapeEq(p.shape[1:], rest) {
			panic(fmt.Sprintf("tensor: Concat0 trailing-shape mismatch %v vs %v", p.shape, parts[0].shape))
		}
		rows += p.shape[0]
	}
	shape := append([]int{rows}, rest...)
	out := New(shape...)
	off := 0
	for _, p := range parts {
		copy(out.data[off:off+p.Size()], p.data)
		off += p.Size()
	}
	return out
}

// Softmax computes row-wise softmax of a rank-2 tensor.
func Softmax(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Softmax wants rank 2, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		orow := out.data[i*n : (i+1)*n]
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		s := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			s += e
		}
		for j := range orow {
			orow[j] /= s
		}
	}
	return out
}

// CrossEntropy computes mean(-sum(targets * log softmax(logits), axis=1)) for
// rank-2 logits and same-shape target distributions.
func CrossEntropy(logits, targets *Tensor) *Tensor {
	if !SameShape(logits, targets) {
		panic(fmt.Sprintf("tensor: CrossEntropy shape mismatch %v vs %v", logits.shape, targets.shape))
	}
	p := Softmax(logits)
	m, n := logits.shape[0], logits.shape[1]
	loss := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t := targets.data[i*n+j]
			if t != 0 {
				loss -= t * math.Log(p.data[i*n+j]+1e-30)
			}
		}
	}
	return Scalar(loss / float64(m))
}

// CrossEntropyGrad returns d(CrossEntropy)/d(logits) = (softmax - targets)/m.
func CrossEntropyGrad(logits, targets *Tensor) *Tensor {
	p := Softmax(logits)
	m := float64(logits.shape[0])
	return Scale(Sub(p, targets), 1/m)
}
