package tensor

import (
	goruntime "runtime"
	"sync"
)

// Shared worker pool for data-parallel kernels. One pool of GOMAXPROCS
// goroutines serves every parallel kernel in the process (the role a BLAS
// thread pool plays): kernels split their iteration space into blocks,
// submit all but one to the pool, and run the last block inline so progress
// never depends on a free worker.

var (
	workerOnce sync.Once
	workerCh   chan func()
	numWorkers int
)

func startWorkers() {
	// At least two workers even on a single-core machine: splitting costs
	// almost nothing at the grain sizes kernels use, and it keeps the
	// parallel path exercised (and race-checked) everywhere.
	numWorkers = goruntime.GOMAXPROCS(0)
	if numWorkers < 2 {
		numWorkers = 2
	}
	workerCh = make(chan func(), 4*numWorkers)
	for i := 0; i < numWorkers; i++ {
		go func() {
			for f := range workerCh {
				f()
			}
		}()
	}
}

// parallelFor runs body over [0, n) split into contiguous blocks of at least
// minGrain iterations, using the shared worker pool. body must be safe to run
// concurrently on disjoint ranges. Falls back to a single inline call when
// the work is too small.
func parallelFor(n, minGrain int, body func(lo, hi int)) {
	workerOnce.Do(startWorkers)
	if n < 2*minGrain {
		body(0, n)
		return
	}
	blocks := n / minGrain
	if blocks > numWorkers {
		blocks = numWorkers
	}
	per := (n + blocks - 1) / blocks
	var wg sync.WaitGroup
	lo := 0
	for lo+per < n {
		hi := lo + per
		wg.Add(1)
		l, h := lo, hi
		workerCh <- func() {
			defer wg.Done()
			body(l, h)
		}
		lo = hi
	}
	body(lo, n) // caller runs the final block inline
	wg.Wait()
}
