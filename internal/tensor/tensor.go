// Package tensor implements a small dense float64 tensor library used as the
// numeric substrate of the JaxPP reproduction. It plays the role of the XLA
// CPU backend: real math at laptop scale so that compiler and runtime
// correctness (gradient equivalence across pipeline schedules) can be tested
// against ground truth.
//
// Tensors are immutable by convention: operations return fresh tensors and
// never alias their inputs' backing storage unless documented (Reshape).
// Two documented exceptions relax the convention for hot paths: scratch
// tensors from the buffer pool (pool.go) are exclusively owned and mutable
// until ownership transfers, and the destination-passing *Into kernels
// (ops.go) write into caller-owned storage.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float64
	// borrowed marks a tensor whose storage belongs to someone else (a batch
	// row view handed to the runtime, for example). Borrowed tensors are
	// readable like any other, but destination-passing kernels refuse to write
	// through them and Recycle refuses to pool their storage — the two paths
	// that could otherwise corrupt the owner's data.
	borrowed bool
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	return &Tensor{shape: cloneShape(shape), data: make([]float64, NumElements(shape))}
}

// FromSlice wraps data in a tensor of the given shape. The data slice is
// copied so the caller keeps ownership.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	if NumElements(shape) != len(data) {
		return nil, fmt.Errorf("tensor: shape %v wants %d elements, got %d", shape, NumElements(shape), len(data))
	}
	d := make([]float64, len(data))
	copy(d, data)
	return &Tensor{shape: cloneShape(shape), data: d}, nil
}

// MustFromSlice is FromSlice but panics on shape mismatch. For tests and
// literals.
func MustFromSlice(data []float64, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Scalar returns a rank-0 tensor holding v.
func Scalar(v float64) *Tensor {
	return &Tensor{shape: []int{}, data: []float64{v}}
}

// Full returns a tensor of the given shape filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// NumElements returns the product of the dims in shape.
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func cloneShape(s []int) []int {
	c := make([]int, len(s))
	copy(c, s)
	return c
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneShape(t.shape) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Data returns the backing slice. Callers must not mutate it; it is exposed
// for efficient read-only access (serialization, comparison).
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy. The copy is independently owned: cloning a
// borrowed view yields an ordinary mutable tensor.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: cloneShape(t.shape), data: d}
}

// Borrowed reports whether the tensor is a borrowed view of caller-owned
// storage (see ViewRange0).
func (t *Tensor) Borrowed() bool { return t.borrowed }

// HasShape reports whether the tensor's shape equals shape. Unlike
// ShapeEq(t.Shape(), shape) it performs no allocation, so hot-path
// validation can use it freely.
func (t *Tensor) HasShape(shape []int) bool { return ShapeEq(t.shape, shape) }

// View wraps data in a tensor of the given shape without copying. The tensor
// aliases data: the caller is responsible for the resulting sharing (used by
// zero-copy collective chunks and internal staging).
func View(data []float64, shape ...int) *Tensor {
	if NumElements(shape) != len(data) {
		panic(fmt.Sprintf("tensor: View shape %v wants %d elements, got %d", shape, NumElements(shape), len(data)))
	}
	return &Tensor{shape: cloneShape(shape), data: data}
}

// CopyFrom copies src into the tensor's storage. Lengths must match. It is
// the write half of Data() for owners of mutable (scratch) tensors.
func (t *Tensor) CopyFrom(src []float64) {
	if len(src) != len(t.data) {
		panic(fmt.Sprintf("tensor: CopyFrom of %d elements into %d", len(src), len(t.data)))
	}
	if t.borrowed {
		panic("tensor: CopyFrom into a borrowed view")
	}
	copy(t.data, src)
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-index. It is intended for test
// setup and initialization code, before a tensor is shared.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d != tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	return ShapeEq(a.shape, b.shape)
}

// ShapeEq reports whether two shapes are identical.
func ShapeEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if t.Size() <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.shape, t.data)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	for i := 0; i < 8; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", t.data[i])
	}
	fmt.Fprintf(&b, " ... %d elements]", t.Size())
	return b.String()
}

// AllClose reports whether a and b have the same shape and all elements are
// within atol + rtol*|b| of each other.
func AllClose(a, b *Tensor, rtol, atol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		diff := math.Abs(a.data[i] - b.data[i])
		if diff > atol+rtol*math.Abs(b.data[i]) {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest elementwise absolute difference, or +Inf on
// shape mismatch.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		return math.Inf(1)
	}
	m := 0.0
	for i := range a.data {
		d := math.Abs(a.data[i] - b.data[i])
		if d > m {
			m = d
		}
	}
	return m
}
