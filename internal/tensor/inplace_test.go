package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// rnd returns a deterministic random tensor.
func rnd(r *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = r.NormFloat64()
	}
	return t
}

// TestIntoKernelsMatchPure checks every destination-passing kernel against
// its pure counterpart (golden equality), both into fresh storage and in
// place over an operand.
func TestIntoKernelsMatchPure(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := rnd(r, 6, 5)
	b := rnd(r, 6, 5)
	s := Scalar(1.75)

	binCases := []struct {
		name string
		pure func(a, b *Tensor) *Tensor
		into func(dst, a, b *Tensor)
	}{
		{"Add", Add, AddInto},
		{"Sub", Sub, SubInto},
		{"Mul", Mul, MulInto},
	}
	for _, tc := range binCases {
		for _, rhs := range []*Tensor{b, s} {
			want := tc.pure(a, rhs)
			dst := New(6, 5)
			tc.into(dst, a, rhs)
			if !AllClose(dst, want, 0, 0) {
				t.Errorf("%sInto(fresh) != %s", tc.name, tc.name)
			}
			inPlace := a.Clone()
			tc.into(inPlace, inPlace, rhs)
			if !AllClose(inPlace, want, 0, 0) {
				t.Errorf("%sInto(in place) != %s", tc.name, tc.name)
			}
		}
		// Scalar on the left broadcasts too.
		want := tc.pure(s, b)
		dst := New(6, 5)
		tc.into(dst, s, b)
		if !AllClose(dst, want, 0, 0) {
			t.Errorf("%sInto(scalar lhs) != %s", tc.name, tc.name)
		}
	}

	unaryCases := []struct {
		name string
		pure func(*Tensor) *Tensor
		into func(dst, a *Tensor)
	}{
		{"ReLU", ReLU, ReLUInto},
		{"ReLUMask", ReLUMask, ReLUMaskInto},
		{"Softmax", Softmax, SoftmaxInto},
	}
	for _, tc := range unaryCases {
		want := tc.pure(a)
		dst := New(6, 5)
		tc.into(dst, a)
		if !AllClose(dst, want, 0, 0) {
			t.Errorf("%sInto(fresh) != %s", tc.name, tc.name)
		}
		inPlace := a.Clone()
		tc.into(inPlace, inPlace)
		if !AllClose(inPlace, want, 0, 0) {
			t.Errorf("%sInto(in place) != %s", tc.name, tc.name)
		}
	}

	// ScaleInto / AxpyInto.
	want := Scale(a, 2.5)
	dst := New(6, 5)
	ScaleInto(dst, a, 2.5)
	if !AllClose(dst, want, 0, 0) {
		t.Error("ScaleInto != Scale")
	}
	inPlace := a.Clone()
	ScaleInto(inPlace, inPlace, 2.5)
	if !AllClose(inPlace, want, 0, 0) {
		t.Error("ScaleInto in place != Scale")
	}
	axpy := b.Clone()
	AxpyInto(axpy, a, 3.0)
	if !AllClose(axpy, Add(b, Scale(a, 3.0)), 1e-12, 1e-12) {
		t.Error("AxpyInto != b + 3a")
	}

	// CrossEntropyGradInto, aliasing the logits.
	targets := rnd(r, 6, 5)
	wantG := CrossEntropyGrad(a, targets)
	g := a.Clone()
	CrossEntropyGradInto(g, g, targets)
	if !AllClose(g, wantG, 1e-12, 1e-12) {
		t.Error("CrossEntropyGradInto in place != CrossEntropyGrad")
	}

	// TransposeInto / SumAxis0Into over scratch garbage.
	tr := GetScratchShaped(5, 6)
	TransposeInto(tr, a)
	if !AllClose(tr, Transpose(a), 0, 0) {
		t.Error("TransposeInto != Transpose")
	}
	sa := GetScratchShaped(5)
	SumAxis0Into(sa, a)
	if !AllClose(sa, SumAxis0(a), 1e-12, 1e-12) {
		t.Error("SumAxis0Into != SumAxis0")
	}
}

// TestMatMulKernels checks the parallel MatMul and the fused variants against
// a naive reference over the benchmark size range.
func TestMatMulKernels(t *testing.T) {
	naive := func(a, b *Tensor) *Tensor {
		m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
		out := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for p := 0; p < k; p++ {
					s += a.At(i, p) * b.At(p, j)
				}
				out.Set(s, i, j)
			}
		}
		return out
	}
	r := rand.New(rand.NewSource(11))
	for _, size := range []int{3, 17, 64, 129, 256} {
		a := rnd(r, size, size)
		b := rnd(r, size, size)
		want := naive(a, b)
		if got := MatMul(a, b); !AllClose(got, want, 1e-9, 1e-9) {
			t.Fatalf("MatMul(%d) mismatch", size)
		}
		// Fused variants over scratch garbage destinations.
		relu := GetScratchShaped(size, size)
		MatMulReLUInto(relu, a, b)
		if !AllClose(relu, ReLU(want), 1e-9, 1e-9) {
			t.Fatalf("MatMulReLUInto(%d) mismatch", size)
		}
		c := rnd(r, size, size)
		if got := MatMulAddReLU(a, b, c); !AllClose(got, ReLU(Add(want, c)), 1e-9, 1e-9) {
			t.Fatalf("MatMulAddReLU(%d) mismatch", size)
		}
		if got := MatMulAddReLU(a, b, Scalar(0.5)); !AllClose(got, ReLU(Add(want, Scalar(0.5))), 1e-9, 1e-9) {
			t.Fatalf("MatMulAddReLU(%d, scalar) mismatch", size)
		}
	}
}

// TestScratchPoolReuse exercises GetScratch/Recycle from many goroutines (run
// under -race) and checks shape plumbing and reuse invariants.
func TestScratchPoolReuse(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 64 + (w*37+i*13)%1000
				s := GetScratch(n)
				if s.Size() != n || s.Dim(0) != n {
					t.Errorf("GetScratch(%d) has shape %v", n, s.Shape())
					return
				}
				s.Data()[0] = float64(w) // owner may mutate scratch
				sh := GetScratchShaped(4, n)
				if sh.Size() != 4*n {
					t.Errorf("GetScratchShaped(4,%d) has %d elements", n, sh.Size())
					return
				}
				z := GetScratchZero(n)
				for _, v := range z.Data() {
					if v != 0 {
						t.Error("GetScratchZero returned dirty storage")
						return
					}
				}
				z.Data()[n-1] = 1
				Recycle(s)
				Recycle(sh)
				Recycle(z)
			}
		}(w)
	}
	wg.Wait()
}

// TestReshapeViewOfScratch checks the documented aliasing contract: a view
// and its base share storage, and ReshapeCopy breaks the sharing.
func TestReshapeViewOfScratch(t *testing.T) {
	base := GetScratchShaped(2, 6)
	base.CopyFrom([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	v := Reshape(base, 3, 4)
	base.Data()[5] = 99
	if v.At(1, 1) != 99 {
		t.Fatal("Reshape view does not share storage")
	}
	c := ReshapeCopy(base, 4, 3)
	base.Data()[5] = -1
	if c.Data()[5] != 99 {
		t.Fatal("ReshapeCopy shares storage")
	}
	Recycle(base)
}
