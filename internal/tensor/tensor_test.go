package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Rank() != 3 || a.Size() != 24 {
		t.Fatalf("rank=%d size=%d", a.Rank(), a.Size())
	}
	if !ShapeEq(a.Shape(), []int{2, 3, 4}) {
		t.Fatalf("shape=%v", a.Shape())
	}
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Size() != 1 || s.Data()[0] != 3.5 {
		t.Fatalf("bad scalar %v", s)
	}
}

func TestFromSliceErrors(t *testing.T) {
	if _, err := FromSlice([]float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("want error on element count mismatch")
	}
	a, err := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 3 {
		t.Fatalf("At(1,0)=%v", a.At(1, 0))
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	a := New(3, 2)
	a.Set(7, 2, 1)
	if a.At(2, 1) != 7 {
		t.Fatalf("got %v", a.At(2, 1))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestAddSubMulDiv(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Data(); got[0] != 5 || got[3] != 5 {
		t.Fatalf("add=%v", got)
	}
	if got := Sub(a, b).Data(); got[0] != -3 || got[3] != 3 {
		t.Fatalf("sub=%v", got)
	}
	if got := Mul(a, b).Data(); got[1] != 6 {
		t.Fatalf("mul=%v", got)
	}
	if got := Div(a, b).Data(); got[3] != 4 {
		t.Fatalf("div=%v", got)
	}
}

func TestScalarBroadcast(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	s := Scalar(10)
	if got := Add(a, s).Data(); got[0] != 11 || got[1] != 12 {
		t.Fatalf("a+s=%v", got)
	}
	if got := Add(s, a).Data(); got[0] != 11 {
		t.Fatalf("s+a=%v", got)
	}
	if got := Sub(s, a).Data(); got[1] != 8 {
		t.Fatalf("s-a=%v", got)
	}
}

func TestZipShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Add(New(2), New(3))
}

func TestMatMul(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := MustFromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !AllClose(c, want, 0, 0) {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := rng.Normal(1, 4, 4)
	eye := New(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(1, i, i)
	}
	if !AllClose(MatMul(a, eye), a, 1e-12, 1e-12) {
		t.Fatal("A*I != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if !ShapeEq(at.Shape(), []int{3, 2}) || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := 1 + int(seed%5)
		n := 1 + int((seed/7)%6)
		a := rng.Normal(1, m, n)
		return AllClose(Transpose(Transpose(a)), a, 0, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReshape(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Reshape(a, 3, 2)
	if b.At(2, 1) != 6 {
		t.Fatalf("reshape data moved: %v", b)
	}
	// Reshape is a zero-copy view: it shares the input's storage.
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Fatal("Reshape should alias its input")
	}
}

func TestReshapeCopy(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := ReshapeCopy(a, 3, 2)
	if b.At(2, 1) != 6 {
		t.Fatalf("reshape data moved: %v", b)
	}
	b.Set(99, 0, 0)
	if a.At(0, 0) == 99 {
		t.Fatal("ReshapeCopy must not alias its input")
	}
}

func TestSumAndSumAxis0(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if Sum(a).Data()[0] != 21 {
		t.Fatalf("sum=%v", Sum(a))
	}
	s0 := SumAxis0(a)
	want := MustFromSlice([]float64{5, 7, 9}, 3)
	if !AllClose(s0, want, 0, 0) {
		t.Fatalf("sumaxis0=%v", s0)
	}
}

func TestMeanAxis0(t *testing.T) {
	a := MustFromSlice([]float64{2, 4, 6, 8}, 2, 2)
	m := MeanAxis0(a)
	want := MustFromSlice([]float64{4, 6}, 2)
	if !AllClose(m, want, 0, 0) {
		t.Fatalf("mean=%v", m)
	}
}

func TestSliceAndStack(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
	s1 := Slice0(a, 1)
	if !AllClose(s1, MustFromSlice([]float64{3, 4}, 2), 0, 0) {
		t.Fatalf("slice=%v", s1)
	}
	parts := []*Tensor{Slice0(a, 0), Slice0(a, 1), Slice0(a, 2)}
	back := Stack0(parts)
	if !AllClose(back, a, 0, 0) {
		t.Fatalf("stack(slices) != original: %v", back)
	}
}

func TestSliceRange0AndConcat0(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	lo := SliceRange0(a, 0, 2)
	hi := SliceRange0(a, 2, 4)
	if !AllClose(Concat0([]*Tensor{lo, hi}), a, 0, 0) {
		t.Fatal("concat(split) != original")
	}
}

func TestReLUAndMask(t *testing.T) {
	a := MustFromSlice([]float64{-1, 0, 2}, 3)
	r := ReLU(a)
	if r.At(0) != 0 || r.At(1) != 0 || r.At(2) != 2 {
		t.Fatalf("relu=%v", r)
	}
	m := ReLUMask(a)
	if m.At(0) != 0 || m.At(2) != 1 {
		t.Fatalf("mask=%v", m)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := NewRNG(7)
	a := rng.Normal(3, 5, 8)
	p := Softmax(a)
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 8; j++ {
			s += p.At(i, j)
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	rng := NewRNG(9)
	a := rng.Normal(1, 3, 4)
	b := Add(a, Scalar(100))
	if !AllClose(Softmax(a), Softmax(b), 1e-9, 1e-12) {
		t.Fatal("softmax not shift invariant")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits, one-hot targets: loss = log(K).
	logits := New(4, 3)
	targets := New(4, 3)
	for i := 0; i < 4; i++ {
		targets.Set(1, i, i%3)
	}
	l := CrossEntropy(logits, targets)
	if math.Abs(l.Data()[0]-math.Log(3)) > 1e-9 {
		t.Fatalf("loss=%v want log 3", l.Data()[0])
	}
}

func TestCrossEntropyGradMatchesFiniteDiff(t *testing.T) {
	rng := NewRNG(3)
	logits := rng.Normal(1, 2, 3)
	targets := rng.OneHotBatch(2, 3)
	g := CrossEntropyGrad(logits, targets)
	eps := 1e-6
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			lp := logits.Clone()
			lp.Set(lp.At(i, j)+eps, i, j)
			lm := logits.Clone()
			lm.Set(lm.At(i, j)-eps, i, j)
			fd := (CrossEntropy(lp, targets).Data()[0] - CrossEntropy(lm, targets).Data()[0]) / (2 * eps)
			if math.Abs(fd-g.At(i, j)) > 1e-5 {
				t.Fatalf("grad[%d,%d]=%v fd=%v", i, j, g.At(i, j), fd)
			}
		}
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := MustFromSlice([]float64{1, 2.0001}, 2)
	if AllClose(a, b, 0, 1e-6) {
		t.Fatal("should differ at atol 1e-6")
	}
	if !AllClose(a, b, 0, 1e-3) {
		t.Fatal("should match at atol 1e-3")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.0001) > 1e-12 {
		t.Fatalf("maxabsdiff=%v", d)
	}
	if !math.IsInf(MaxAbsDiff(a, New(3)), 1) {
		t.Fatal("shape mismatch should be +Inf")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Normal(1, 10)
	b := NewRNG(42).Normal(1, 10)
	if !AllClose(a, b, 0, 0) {
		t.Fatal("same seed should reproduce")
	}
	c := NewRNG(43).Normal(1, 10)
	if AllClose(a, c, 0, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestRNGUniformRange(t *testing.T) {
	u := NewRNG(5).Uniform(-2, 3, 1000)
	for _, v := range u.Data() {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func TestOneHotBatch(t *testing.T) {
	oh := NewRNG(11).OneHotBatch(20, 7)
	for i := 0; i < 20; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			v := oh.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("non-binary one-hot value %v", v)
			}
			s += v
		}
		if s != 1 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

// Property: (A+B)+C == A+(B+C) and matmul distributes over addition.
func TestMatMulDistributes(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 2+int(seed%3), 2+int((seed/3)%3), 2+int((seed/9)%3)
		a := rng.Normal(1, m, k)
		b := rng.Normal(1, k, n)
		c := rng.Normal(1, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(lhs, rhs, 1e-9, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose(A B) == transpose(B) transpose(A).
func TestMatMulTransposeIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 2+int(seed%4), 2+int((seed/5)%4), 2+int((seed/25)%4)
		a := rng.Normal(1, m, k)
		b := rng.Normal(1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return AllClose(lhs, rhs, 1e-9, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
