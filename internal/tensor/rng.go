package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 state with
// xorshift output) used for reproducible weight initialization without
// depending on math/rand seeding behavior across Go versions.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019}
}

func (r *RNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Norm returns an approximately standard-normal value (Box-Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Uniform fills a new tensor with uniform values in [lo, hi).
func (r *RNG) Uniform(lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*r.Float64()
	}
	return t
}

// Normal fills a new tensor with N(0, std^2) values.
func (r *RNG) Normal(std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = std * r.Norm()
	}
	return t
}

// Xavier fills a new rank-2 tensor with Glorot-uniform values.
func (r *RNG) Xavier(fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return r.Uniform(-limit, limit, fanIn, fanOut)
}

// OneHotBatch builds a (rows, classes) one-hot matrix with random classes,
// useful for synthetic classification targets.
func (r *RNG) OneHotBatch(rows, classes int) *Tensor {
	t := New(rows, classes)
	for i := 0; i < rows; i++ {
		c := int(r.next() % uint64(classes))
		t.data[i*classes+c] = 1
	}
	return t
}
