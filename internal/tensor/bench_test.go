package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMatMul measures the (possibly parallel) matmul kernel across the
// size range the pipeline microbatches and calibration models span. Run with
// -benchmem so allocation regressions in the kernel path are visible.
func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			r := rand.New(rand.NewSource(1))
			x := rnd(r, size, size)
			y := rnd(r, size, size)
			dst := New(size, size)
			b.SetBytes(int64(8 * size * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, x, y)
			}
			flops := 2 * float64(size) * float64(size) * float64(size)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// BenchmarkMatMulFused compares the fused matmul+bias+relu kernel against
// its unfused composition.
func BenchmarkMatMulFused(b *testing.B) {
	const size = 256
	r := rand.New(rand.NewSource(1))
	x := rnd(r, size, size)
	y := rnd(r, size, size)
	c := rnd(r, size, size)
	dst := New(size, size)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MatMulAddReLUInto(dst, x, y, c)
		}
	})
	b.Run("unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := MatMul(x, y)
			t = Add(t, c)
			t = ReLU(t)
			dst = t
		}
	})
}

// BenchmarkElementwise measures the specialized elementwise loops, pure vs
// destination-passing.
func BenchmarkElementwise(b *testing.B) {
	const n = 1 << 16
	r := rand.New(rand.NewSource(1))
	x := rnd(r, n)
	y := rnd(r, n)
	dst := New(n)
	b.Run("AddPure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Add(x, y)
		}
	})
	b.Run("AddInto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AddInto(dst, x, y)
		}
	})
	b.Run("AxpyInto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			AxpyInto(dst, x, 0.5)
		}
	})
}
