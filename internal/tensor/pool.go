package tensor

import (
	"math/bits"
	"sync"

	"repro/internal/obs"
)

// Pool accounting: hits reuse pooled storage, misses allocate (a cold bucket
// or post-GC eviction), oversize requests bypass the pool entirely, and
// recycle_drop counts returns the pool refuses (borrowed views, sub-minimum
// or oversize buffers). A rising miss rate at steady state means GC is
// evicting buckets faster than the step reuses them.
var (
	cPoolHit         = obs.Counter("pool/hit")
	cPoolMiss        = obs.Counter("pool/miss")
	cPoolOversize    = obs.Counter("pool/oversize")
	cPoolRecycle     = obs.Counter("pool/recycle")
	cPoolRecycleDrop = obs.Counter("pool/recycle_drop")
)

// Scratch-tensor pool. Hot paths (the IR interpreter's intermediates, the
// collective engine's ring chunks) churn through short-lived tensors of a
// small set of sizes; recycling them through size-bucketed sync.Pools makes
// those paths allocation-free in steady state.
//
// Ownership rules:
//   - GetScratch hands out a tensor with unspecified contents that the caller
//     owns exclusively and may mutate (unlike ordinary tensors, which are
//     immutable by convention).
//   - Recycle returns a tensor to the pool. The caller must hold the only
//     reference: recycling a tensor that is still aliased (a Reshape view, a
//     stored buffer, an in-flight message) corrupts later computations.
//   - A scratch tensor handed to another owner (sent over a transport, stored,
//     returned to a caller) transfers ownership: the new owner recycles it, or
//     simply drops it to the garbage collector.

const (
	// minPoolBits is the smallest bucket (a single element). Scalars are the
	// hottest scratch size of all — every microbatch loss is one — so the
	// pool tiers go all the way down: a per-step churn of ~100 scalar tensors
	// recycles instead of allocating.
	minPoolBits = 0
	// maxPoolBits is the largest bucket (2^24 elements, 128 MiB): beyond it
	// tensors are allocated directly.
	maxPoolBits = 24
)

var scratchPools [maxPoolBits + 1]sync.Pool

// bucketFor returns the pool index whose buffers can hold n elements.
func bucketFor(n int) int {
	if n <= 1<<minPoolBits {
		return minPoolBits
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// GetScratch returns a flat scratch tensor of shape [n] backed by pooled
// storage. Contents are unspecified; the caller owns the tensor and may
// mutate it until ownership is transferred (see the package ownership rules).
func GetScratch(n int) *Tensor {
	t := getScratchCap(n)
	t.shape = append(t.shape[:0], n)
	return t
}

// GetScratchShaped is GetScratch for an arbitrary shape.
func GetScratchShaped(shape ...int) *Tensor {
	t := getScratchCap(NumElements(shape))
	t.shape = append(t.shape[:0], shape...)
	return t
}

// GetScratchZero is GetScratchShaped with the storage cleared.
func GetScratchZero(shape ...int) *Tensor {
	t := GetScratchShaped(shape...)
	clear(t.data)
	return t
}

func getScratchCap(n int) *Tensor {
	b := bucketFor(n)
	if b > maxPoolBits {
		obs.Add(cPoolOversize, 1)
		return &Tensor{data: make([]float64, n)}
	}
	v := scratchPools[b].Get()
	if v == nil {
		obs.Add(cPoolMiss, 1)
		return &Tensor{data: make([]float64, n, 1<<b)}
	}
	obs.Add(cPoolHit, 1)
	t := v.(*Tensor)
	t.data = t.data[:cap(t.data)][:n]
	return t
}

// Recycle returns t's storage to the scratch pool. The caller must own the
// only reference to t and to its backing array (no live views). Any tensor
// may be recycled, not just ones from GetScratch; undersized or oversized
// storage is simply dropped.
func Recycle(t *Tensor) {
	if t == nil || t.borrowed {
		// Borrowed views never own their storage; pooling it would hand the
		// owner's live data out as scratch. Silently dropping the view is the
		// correct recycle for it.
		obs.Add(cPoolRecycleDrop, 1)
		return
	}
	c := cap(t.data)
	if c < 1<<minPoolBits {
		obs.Add(cPoolRecycleDrop, 1)
		return
	}
	// Floor bucket: the buffer can serve any request up to its capacity, and
	// every request routed to bucket b needs at most 1<<b <= c elements.
	b := bits.Len(uint(c)) - 1
	if b > maxPoolBits {
		obs.Add(cPoolRecycleDrop, 1)
		return
	}
	obs.Add(cPoolRecycle, 1)
	scratchPools[b].Put(t)
}
