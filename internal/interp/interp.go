// Package interp evaluates IR graphs over real tensors. It is the reference
// executor (the role XLA-on-CPU plays for JAX): every distributed execution
// mode in this repository is validated against it.
package interp

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/tensor"
)

// Env maps value IDs to tensors during evaluation.
type Env map[int]*tensor.Tensor

// Eval runs graph on the given inputs (positionally matching graph.Inputs)
// and returns the tensors for graph.Outputs.
func Eval(g *ir.Graph, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) != len(g.Inputs) {
		return nil, fmt.Errorf("interp: graph %q wants %d inputs, got %d", g.Name, len(g.Inputs), len(inputs))
	}
	env := make(Env, len(g.Inputs)+len(g.Eqns))
	for i, v := range g.Inputs {
		if !tensor.ShapeEq(v.Shape, inputs[i].Shape()) {
			return nil, fmt.Errorf("interp: input %d shape %v, value wants %v", i, inputs[i].Shape(), v.Shape)
		}
		env[v.ID] = inputs[i]
	}
	for i, e := range g.Eqns {
		if err := EvalEquation(e, env); err != nil {
			return nil, fmt.Errorf("interp: eqn %d: %w", i, err)
		}
	}
	outs := make([]*tensor.Tensor, len(g.Outputs))
	for i, o := range g.Outputs {
		t, ok := env[o.ID]
		if !ok {
			return nil, fmt.Errorf("interp: output %s was never computed", o)
		}
		outs[i] = t
	}
	return outs, nil
}

// EvalEquation executes one equation, reading operands from env and writing
// the result back into env.
func EvalEquation(e *ir.Equation, env Env) error {
	args := make([]*tensor.Tensor, len(e.Inputs))
	for i, in := range e.Inputs {
		t, ok := env[in.ID]
		if !ok {
			return fmt.Errorf("operand %s missing from environment", in)
		}
		args[i] = t
	}
	out, err := Apply(e.Op, e.Attrs, args)
	if err != nil {
		return err
	}
	env[e.Outputs[0].ID] = out
	return nil
}

// Apply executes a single primitive.
func Apply(op ir.Op, attrs ir.Attrs, args []*tensor.Tensor) (*tensor.Tensor, error) {
	switch op {
	case ir.OpMatMul:
		return tensor.MatMul(args[0], args[1]), nil
	case ir.OpAdd:
		return tensor.Add(args[0], args[1]), nil
	case ir.OpSub:
		return tensor.Sub(args[0], args[1]), nil
	case ir.OpMul:
		return tensor.Mul(args[0], args[1]), nil
	case ir.OpScale:
		return tensor.Scale(args[0], attrs.Factor), nil
	case ir.OpReLU:
		return tensor.ReLU(args[0]), nil
	case ir.OpReLUMask:
		return tensor.ReLUMask(args[0]), nil
	case ir.OpTanh:
		return tensor.Tanh(args[0]), nil
	case ir.OpTanhGrad:
		th := tensor.Tanh(args[0])
		one := tensor.Ones(th.Shape()...)
		return tensor.Mul(args[1], tensor.Sub(one, tensor.Mul(th, th))), nil
	case ir.OpTranspose:
		return tensor.Transpose(args[0]), nil
	case ir.OpReshape:
		return tensor.Reshape(args[0], attrs.Shape...), nil
	case ir.OpSum:
		return tensor.Sum(args[0]), nil
	case ir.OpSumAxis0:
		return tensor.SumAxis0(args[0]), nil
	case ir.OpBroadcast0:
		parts := make([]*tensor.Tensor, attrs.N)
		for i := range parts {
			parts[i] = args[0]
		}
		return tensor.Stack0(parts), nil
	case ir.OpBroadcastS:
		return tensor.Full(args[0].Data()[0], attrs.Shape...), nil
	case ir.OpSoftmax:
		return tensor.Softmax(args[0]), nil
	case ir.OpXent:
		return tensor.CrossEntropy(args[0], args[1]), nil
	case ir.OpXentGrad:
		return tensor.CrossEntropyGrad(args[0], args[1]), nil
	case ir.OpZeros:
		return tensor.New(attrs.Shape...), nil
	case ir.OpConst:
		return tensor.Full(attrs.Factor, attrs.Shape...), nil
	case ir.OpYield:
		return args[0].Clone(), nil
	default:
		return nil, fmt.Errorf("interp: unknown op %q", op)
	}
}
