package interp

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/tensor"
)

func TestEvalSimpleChain(t *testing.T) {
	g := ir.NewGraph("chain")
	x := g.AddInput([]int{2, 2}, "x")
	w := g.AddInput([]int{2, 2}, "w")
	h := g.MustEmit(ir.OpMatMul, ir.Attrs{}, x, w)
	h = g.MustEmit(ir.OpReLU, ir.Attrs{}, h)
	g.SetOutputs(h)
	xt := tensor.MustFromSlice([]float64{1, -1, 2, 0}, 2, 2)
	wt := tensor.MustFromSlice([]float64{1, 0, 0, 1}, 2, 2)
	outs, err := Eval(g, []*tensor.Tensor{xt, wt})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MustFromSlice([]float64{1, 0, 2, 0}, 2, 2)
	if !tensor.AllClose(outs[0], want, 0, 0) {
		t.Fatalf("got %v", outs[0])
	}
}

func TestEvalInputCountMismatch(t *testing.T) {
	g := ir.NewGraph("g")
	g.AddInput([]int{2}, "x")
	g.SetOutputs(g.Inputs[0])
	if _, err := Eval(g, nil); err == nil {
		t.Fatal("want input count error")
	}
}

func TestEvalInputShapeMismatch(t *testing.T) {
	g := ir.NewGraph("g")
	x := g.AddInput([]int{2}, "x")
	g.SetOutputs(x)
	if _, err := Eval(g, []*tensor.Tensor{tensor.New(3)}); err == nil {
		t.Fatal("want input shape error")
	}
}

func TestApplyAllOps(t *testing.T) {
	a := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := tensor.MustFromSlice([]float64{5, 6, 7, 8}, 2, 2)
	s := tensor.Scalar(2)
	onehot := tensor.MustFromSlice([]float64{1, 0, 0, 1}, 2, 2)
	cases := []struct {
		op    ir.Op
		attrs ir.Attrs
		args  []*tensor.Tensor
		check func(*tensor.Tensor) bool
	}{
		{ir.OpMatMul, ir.Attrs{}, []*tensor.Tensor{a, b}, func(t *tensor.Tensor) bool { return t.At(0, 0) == 19 }},
		{ir.OpAdd, ir.Attrs{}, []*tensor.Tensor{a, b}, func(t *tensor.Tensor) bool { return t.At(0, 0) == 6 }},
		{ir.OpSub, ir.Attrs{}, []*tensor.Tensor{b, a}, func(t *tensor.Tensor) bool { return t.At(0, 0) == 4 }},
		{ir.OpMul, ir.Attrs{}, []*tensor.Tensor{a, b}, func(t *tensor.Tensor) bool { return t.At(1, 1) == 32 }},
		{ir.OpScale, ir.Attrs{Factor: 3}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.At(0, 1) == 6 }},
		{ir.OpReLU, ir.Attrs{}, []*tensor.Tensor{tensor.MustFromSlice([]float64{-1, 1}, 2)}, func(t *tensor.Tensor) bool { return t.At(0) == 0 && t.At(1) == 1 }},
		{ir.OpReLUMask, ir.Attrs{}, []*tensor.Tensor{tensor.MustFromSlice([]float64{-1, 1}, 2)}, func(t *tensor.Tensor) bool { return t.At(0) == 0 && t.At(1) == 1 }},
		{ir.OpTranspose, ir.Attrs{}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.At(0, 1) == 3 }},
		{ir.OpReshape, ir.Attrs{Shape: []int{4}}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.Rank() == 1 }},
		{ir.OpSum, ir.Attrs{}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.Data()[0] == 10 }},
		{ir.OpSumAxis0, ir.Attrs{}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.At(0) == 4 }},
		{ir.OpBroadcast0, ir.Attrs{N: 3}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.Rank() == 3 && t.Dim(0) == 3 }},
		{ir.OpBroadcastS, ir.Attrs{Shape: []int{2, 2}}, []*tensor.Tensor{s}, func(t *tensor.Tensor) bool { return t.At(1, 1) == 2 }},
		{ir.OpSoftmax, ir.Attrs{}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.At(0, 0) < t.At(0, 1) }},
		{ir.OpXent, ir.Attrs{}, []*tensor.Tensor{a, onehot}, func(t *tensor.Tensor) bool { return t.Data()[0] > 0 }},
		{ir.OpXentGrad, ir.Attrs{}, []*tensor.Tensor{a, onehot}, func(t *tensor.Tensor) bool { return t.Rank() == 2 }},
		{ir.OpZeros, ir.Attrs{Shape: []int{3}}, nil, func(t *tensor.Tensor) bool { return t.At(1) == 0 }},
		{ir.OpConst, ir.Attrs{Shape: []int{3}, Factor: 7}, nil, func(t *tensor.Tensor) bool { return t.At(2) == 7 }},
		{ir.OpYield, ir.Attrs{Stage: 1}, []*tensor.Tensor{a}, func(t *tensor.Tensor) bool { return t.At(0, 0) == 1 }},
		{ir.OpTanh, ir.Attrs{}, []*tensor.Tensor{tensor.New(2)}, func(t *tensor.Tensor) bool { return t.At(0) == 0 }},
	}
	for _, c := range cases {
		out, err := Apply(c.op, c.attrs, c.args)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		if !c.check(out) {
			t.Fatalf("%s: unexpected result %v", c.op, out)
		}
	}
}

func TestApplyUnknownOp(t *testing.T) {
	if _, err := Apply(ir.Op("nope"), ir.Attrs{}, nil); err == nil {
		t.Fatal("want error")
	}
}

func TestYieldDoesNotAlias(t *testing.T) {
	a := tensor.MustFromSlice([]float64{1, 2}, 2)
	out, err := Apply(ir.OpYield, ir.Attrs{}, []*tensor.Tensor{a})
	if err != nil {
		t.Fatal(err)
	}
	out.Set(99, 0)
	if a.At(0) == 99 {
		t.Fatal("yield aliases its input")
	}
}
