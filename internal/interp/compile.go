package interp

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/tensor"
)

// Program is a graph compiled to a flat list of closures over a dense value
// environment — the role an XLA executable plays for one pipeline segment.
// Compilation runs a liveness pass (ir.Graph.LastUse) so execution can:
//
//   - free dead intermediates into the tensor scratch pool the moment their
//     last consumer runs (steady-state steps allocate almost nothing),
//   - execute elementwise ops (including gradient-accumulation adds) in
//     place on dying operands it owns,
//   - fuse MatMul→ReLU and MatMul→Add→ReLU chains into single kernels.
//
// Aliasing is tracked per storage root: Reshape views and in-place results
// share their operand's root, and a root is recycled only after every value
// aliasing it has died. Caller-provided inputs are never mutated or recycled;
// returned outputs are owned by the caller.
//
// A Program is immutable after compilation and safe for concurrent Run calls
// (data-parallel replicas share one compiled program per segment).
type Program struct {
	g        *ir.Graph
	nSlots   int
	outSlots []int
	// copyOut marks outputs that must be cloned on the way out: outputs
	// whose storage aliases a caller input (a Reshape of an input) or an
	// earlier output. Cloning there keeps the ownership contract — every
	// returned tensor is independently owned by the caller — airtight.
	copyOut []bool
	instrs  []pinstr
	envPool sync.Pool // *[]*tensor.Tensor of length nSlots
}

// pinstr is one compiled instruction: an evaluation closure plus the storage
// roots that die once it has run.
type pinstr struct {
	eval func(env []*tensor.Tensor) error
	free []int
}

// compiler carries the per-graph analysis state while closures are emitted.
type compiler struct {
	g        *ir.Graph
	slotOf   map[int]int // value ID -> dense env slot
	lastUse  []int       // per slot: last consuming eqn index (-1 unused, len(Eqns) output)
	root     []int       // per slot: storage-root slot (aliases share a root)
	owned    []bool      // per root slot: storage is program-owned (recyclable)
	rootLast []int       // per root slot: last eqn index at which any alias is live
	freed    []bool      // per root slot: a recycle has been scheduled
	instrs   []pinstr
}

// NewProgram compiles g. The graph must be SSA-well-formed (ir.Verify).
func NewProgram(g *ir.Graph) (*Program, error) {
	c := &compiler{g: g, slotOf: make(map[int]int, len(g.Inputs)+len(g.Eqns))}
	for i, v := range g.Inputs {
		c.slotOf[v.ID] = i
	}
	n := len(g.Inputs)
	for i, e := range g.Eqns {
		if len(e.Outputs) != 1 {
			return nil, fmt.Errorf("interp: eqn %d has %d outputs, want 1", i, len(e.Outputs))
		}
		c.slotOf[e.Outputs[0].ID] = n
		n++
	}
	c.lastUse = make([]int, n)
	for s := range c.lastUse {
		c.lastUse[s] = -1
	}
	for id, last := range g.LastUse() {
		c.lastUse[c.slotOf[id]] = last
	}
	c.root = make([]int, n)
	c.owned = make([]bool, n)
	c.rootLast = make([]int, n)
	c.freed = make([]bool, n)
	for s := 0; s < n; s++ {
		c.root[s] = s
		c.rootLast[s] = c.lastUse[s]
	}

	for i := 0; i < len(g.Eqns); i++ {
		i = c.emit(i)
	}

	p := &Program{g: g, nSlots: n, instrs: c.instrs}
	p.outSlots = make([]int, len(g.Outputs))
	p.copyOut = make([]bool, len(g.Outputs))
	ownedRoots := map[int]bool{}
	for i, o := range g.Outputs {
		s := c.slotOf[o.ID]
		p.outSlots[i] = s
		r := c.root[s]
		p.copyOut[i] = !c.owned[r] || ownedRoots[r]
		ownedRoots[r] = true
	}
	p.envPool.New = func() any {
		env := make([]*tensor.Tensor, n)
		return &env
	}
	return p, nil
}

func (c *compiler) slot(v *ir.Value) int { return c.slotOf[v.ID] }

// raiseRootLast extends the lifetime of root r to at least eqn index last.
func (c *compiler) raiseRootLast(r, last int) {
	if last > c.rootLast[r] {
		c.rootLast[r] = last
	}
}

// push appends an instruction and schedules recycling of every involved
// owned root whose lifetime ends at or before eqn index at (fused chains can
// retire an operand at an interior, fused-away equation). fusedAway slots are
// intermediates that never materialized and must not be freed.
func (c *compiler) push(at int, eval func([]*tensor.Tensor) error, involved []int, fusedAway ...int) {
	var free []int
	for _, s := range involved {
		r := c.root[s]
		if !c.owned[r] || c.freed[r] {
			continue
		}
		fused := false
		for _, f := range fusedAway {
			if r == f {
				fused = true
			}
		}
		if !fused && c.rootLast[r] <= at {
			free = append(free, r)
			c.freed[r] = true
		}
	}
	c.instrs = append(c.instrs, pinstr{eval: eval, free: free})
}

// freshOut marks the output slot as a new program-owned storage root.
func (c *compiler) freshOut(i, out int) {
	c.owned[out] = true
	c.raiseRootLast(out, i) // unused outputs die at their own instruction
}

// adoptable reports whether arg's storage may be overwritten at eqn i to hold
// the output: the root is program-owned, every alias dies at i, and the
// shapes match.
func (c *compiler) adoptable(i, argSlot int, argShape, outShape []int) bool {
	r := c.root[argSlot]
	return c.owned[r] && c.rootLast[r] == i && tensor.ShapeEq(argShape, outShape)
}

// adopt records that out reuses arg's storage root.
func (c *compiler) adopt(i, argSlot, outSlot int) {
	r := c.root[argSlot]
	c.root[outSlot] = r
	c.raiseRootLast(r, c.lastUse[outSlot])
	c.raiseRootLast(r, i) // at minimum the storage lives through this eqn
}

// emit compiles eqn i (possibly fusing followers) and returns the index of
// the last equation consumed.
func (c *compiler) emit(i int) int {
	e := c.g.Eqns[i]
	out := c.slot(e.Outputs[0])
	args := make([]int, len(e.Inputs))
	for k, in := range e.Inputs {
		args[k] = c.slot(in)
	}
	outShape := e.Outputs[0].Shape
	involved := append(append([]int(nil), args...), out)

	switch e.Op {
	case ir.OpReshape:
		// Zero-copy view: output aliases the operand's storage root.
		a := args[0]
		r := c.root[a]
		c.root[out] = r
		c.raiseRootLast(r, c.lastUse[out])
		shape := e.Attrs.Shape
		c.push(i, func(env []*tensor.Tensor) error {
			env[out] = tensor.Reshape(env[a], shape...)
			return nil
		}, involved)
		return i

	case ir.OpYield:
		// Identity marking a stage boundary: alias the operand instead of
		// cloning it (the reference Apply clones). The output shares the
		// operand's storage root, so liveness keeps the storage alive and
		// copyOut preserves the caller-ownership contract for outputs.
		a := args[0]
		r := c.root[a]
		c.root[out] = r
		c.raiseRootLast(r, c.lastUse[out])
		c.push(i, func(env []*tensor.Tensor) error {
			env[out] = env[a]
			return nil
		}, involved)
		return i

	case ir.OpMatMul:
		if j, fused := c.tryFuseMatMul(i, e, args, out); fused {
			return j
		}
		a, b := args[0], args[1]
		c.freshOut(i, out)
		c.push(i, func(env []*tensor.Tensor) error {
			dst := tensor.GetScratchShaped(outShape...)
			tensor.MatMulInto(dst, env[a], env[b])
			env[out] = dst
			return nil
		}, involved)
		return i

	case ir.OpAdd, ir.OpSub, ir.OpMul:
		into := tensor.AddInto
		switch e.Op {
		case ir.OpSub:
			into = tensor.SubInto
		case ir.OpMul:
			into = tensor.MulInto
		}
		a, b := args[0], args[1]
		// Prefer writing into a dying operand (gradient-accumulation adds hit
		// this path); the kernels are index-local, so the other operand may
		// alias the destination.
		switch {
		case c.adoptable(i, a, e.Inputs[0].Shape, outShape):
			c.adopt(i, a, out)
			c.push(i, func(env []*tensor.Tensor) error {
				t := env[a]
				into(t, t, env[b])
				env[out] = t
				return nil
			}, involved)
		case c.adoptable(i, b, e.Inputs[1].Shape, outShape):
			c.adopt(i, b, out)
			c.push(i, func(env []*tensor.Tensor) error {
				t := env[b]
				into(t, env[a], t)
				env[out] = t
				return nil
			}, involved)
		default:
			c.freshOut(i, out)
			c.push(i, func(env []*tensor.Tensor) error {
				dst := tensor.GetScratchShaped(outShape...)
				into(dst, env[a], env[b])
				env[out] = dst
				return nil
			}, involved)
		}
		return i

	case ir.OpScale, ir.OpReLU, ir.OpReLUMask, ir.OpSoftmax:
		factor := e.Attrs.Factor
		var into func(dst, a *tensor.Tensor)
		switch e.Op {
		case ir.OpScale:
			into = func(dst, a *tensor.Tensor) { tensor.ScaleInto(dst, a, factor) }
		case ir.OpReLU:
			into = tensor.ReLUInto
		case ir.OpReLUMask:
			into = tensor.ReLUMaskInto
		case ir.OpSoftmax:
			into = tensor.SoftmaxInto
		}
		a := args[0]
		if c.adoptable(i, a, e.Inputs[0].Shape, outShape) {
			c.adopt(i, a, out)
			c.push(i, func(env []*tensor.Tensor) error {
				t := env[a]
				into(t, t)
				env[out] = t
				return nil
			}, involved)
		} else {
			c.freshOut(i, out)
			c.push(i, func(env []*tensor.Tensor) error {
				dst := tensor.GetScratchShaped(outShape...)
				into(dst, env[a])
				env[out] = dst
				return nil
			}, involved)
		}
		return i

	case ir.OpXentGrad:
		a, b := args[0], args[1]
		// dst may alias the logits but never the targets.
		if c.adoptable(i, a, e.Inputs[0].Shape, outShape) && c.root[b] != c.root[a] {
			c.adopt(i, a, out)
			c.push(i, func(env []*tensor.Tensor) error {
				t := env[a]
				tensor.CrossEntropyGradInto(t, t, env[b])
				env[out] = t
				return nil
			}, involved)
		} else {
			c.freshOut(i, out)
			c.push(i, func(env []*tensor.Tensor) error {
				dst := tensor.GetScratchShaped(outShape...)
				tensor.CrossEntropyGradInto(dst, env[a], env[b])
				env[out] = dst
				return nil
			}, involved)
		}
		return i

	case ir.OpTranspose:
		a := args[0]
		c.freshOut(i, out)
		c.push(i, func(env []*tensor.Tensor) error {
			dst := tensor.GetScratchShaped(outShape...)
			tensor.TransposeInto(dst, env[a])
			env[out] = dst
			return nil
		}, involved)
		return i

	case ir.OpSumAxis0:
		a := args[0]
		c.freshOut(i, out)
		c.push(i, func(env []*tensor.Tensor) error {
			dst := tensor.GetScratchShaped(outShape...)
			tensor.SumAxis0Into(dst, env[a])
			env[out] = dst
			return nil
		}, involved)
		return i

	case ir.OpZeros:
		c.freshOut(i, out)
		c.push(i, func(env []*tensor.Tensor) error {
			env[out] = tensor.GetScratchZero(outShape...)
			return nil
		}, involved)
		return i

	default:
		// Generic fallback: the reference Apply. Results are fresh tensors
		// (Reshape, the only aliasing op, is handled above), so the output is
		// a recyclable root.
		op, attrs := e.Op, e.Attrs
		c.freshOut(i, out)
		argsCopy := append([]int(nil), args...)
		c.push(i, func(env []*tensor.Tensor) error {
			in := make([]*tensor.Tensor, len(argsCopy))
			for k, s := range argsCopy {
				in[k] = env[s]
			}
			t, err := Apply(op, attrs, in)
			if err != nil {
				return err
			}
			env[out] = t
			return nil
		}, involved)
		return i
	}
}

// tryFuseMatMul fuses MatMul→ReLU and MatMul→Add→ReLU chains when the
// intermediate values have no other consumer. Returns the index of the last
// fused equation.
func (c *compiler) tryFuseMatMul(i int, e *ir.Equation, args []int, out int) (int, bool) {
	eqns := c.g.Eqns
	a, b := args[0], args[1]
	mmShape := e.Outputs[0].Shape

	// MatMul → ReLU
	if i+1 < len(eqns) {
		f := eqns[i+1]
		if f.Op == ir.OpReLU && f.Inputs[0].ID == e.Outputs[0].ID && c.lastUse[out] == i+1 {
			fOut := c.slot(f.Outputs[0])
			c.freshOut(i+1, fOut)
			shape := f.Outputs[0].Shape
			c.push(i+1, func(env []*tensor.Tensor) error {
				dst := tensor.GetScratchShaped(shape...)
				tensor.MatMulReLUInto(dst, env[a], env[b])
				env[fOut] = dst
				return nil
			}, []int{a, b, fOut}, out)
			return i + 1, true
		}
		// MatMul → Add → ReLU (bias before activation)
		if i+2 < len(eqns) && f.Op == ir.OpAdd && c.lastUse[out] == i+1 {
			var cIn *ir.Value
			if f.Inputs[0].ID == e.Outputs[0].ID {
				cIn = f.Inputs[1]
			} else if f.Inputs[1].ID == e.Outputs[0].ID {
				cIn = f.Inputs[0]
			}
			// Add(mm, mm) offers no bias operand: the fused kernel would
			// read the never-materialized MatMul slot.
			if cIn != nil && cIn.ID == e.Outputs[0].ID {
				cIn = nil
			}
			g := eqns[i+2]
			fOut := c.slot(f.Outputs[0])
			if cIn != nil && g.Op == ir.OpReLU && g.Inputs[0].ID == f.Outputs[0].ID &&
				c.lastUse[fOut] == i+2 &&
				(tensor.ShapeEq(cIn.Shape, mmShape) || len(cIn.Shape) == 0) {
				cSlot := c.slot(cIn)
				gOut := c.slot(g.Outputs[0])
				c.freshOut(i+2, gOut)
				shape := g.Outputs[0].Shape
				c.push(i+2, func(env []*tensor.Tensor) error {
					dst := tensor.GetScratchShaped(shape...)
					tensor.MatMulAddReLUInto(dst, env[a], env[b], env[cSlot])
					env[gOut] = dst
					return nil
				}, []int{a, b, cSlot, gOut}, out, fOut)
				return i + 2, true
			}
		}
	}
	return i, false
}

// NumOutputs returns the number of output tensors a run produces.
func (p *Program) NumOutputs() int { return len(p.outSlots) }

// Run executes the program on inputs (positionally matching the graph's
// inputs) and returns the output tensors. Inputs are borrowed for the
// duration of the call: they are never mutated, never recycled, and no
// reference to them outlives the call except through outputs that copyOut
// cloning already detached. Outputs are owned by the caller. Safe for
// concurrent use.
func (p *Program) Run(inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	outs := make([]*tensor.Tensor, len(p.outSlots))
	if err := p.RunInto(outs, inputs); err != nil {
		return nil, err
	}
	return outs, nil
}

// RunInto is Run writing the outputs into outs (len NumOutputs), for callers
// that reuse a result buffer across steps to keep the dispatch path
// allocation-free. The same borrowed-input contract as Run applies.
func (p *Program) RunInto(outs []*tensor.Tensor, inputs []*tensor.Tensor) error {
	g := p.g
	if len(inputs) != len(g.Inputs) {
		return fmt.Errorf("interp: graph %q wants %d inputs, got %d", g.Name, len(g.Inputs), len(inputs))
	}
	if len(outs) != len(p.outSlots) {
		return fmt.Errorf("interp: graph %q produces %d outputs, destination holds %d", g.Name, len(p.outSlots), len(outs))
	}
	for i, v := range g.Inputs {
		if !inputs[i].HasShape(v.Shape) {
			return fmt.Errorf("interp: input %d shape %v, value wants %v", i, inputs[i].Shape(), v.Shape)
		}
	}
	envp := p.envPool.Get().(*[]*tensor.Tensor)
	env := *envp
	copy(env, inputs)
	for i := range p.instrs {
		ins := &p.instrs[i]
		if err := ins.eval(env); err != nil {
			clear(env)
			p.envPool.Put(envp)
			return fmt.Errorf("interp: eqn %d: %w", i, err)
		}
		for _, s := range ins.free {
			tensor.Recycle(env[s])
			env[s] = nil
		}
	}
	for i, s := range p.outSlots {
		if p.copyOut[i] {
			outs[i] = env[s].Clone()
		} else {
			outs[i] = env[s]
		}
	}
	clear(env)
	p.envPool.Put(envp)
	return nil
}
