package interp

import (
	"fmt"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/ir"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// mlpGrad traces a depth-layer MLP with cross-entropy loss and differentiates
// it — the op mix (matmul, relu, xent, transposes, accumulation adds) every
// pipeline segment executes.
func mlpGrad(tb testing.TB, depth, rows, width int) (*ir.Graph, []*tensor.Tensor) {
	tb.Helper()
	var params []*ir.Value
	g, err := trace.Trace("mlp", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", rows, width)
		y := b.Input("y", rows, width)
		h := x
		for d := 0; d < depth; d++ {
			w := b.Input(fmt.Sprintf("w%d", d), width, width)
			params = append(params, w)
			h = b.ReLU(b.MatMul(h, w))
		}
		return []*ir.Value{b.CrossEntropy(h, y)}
	})
	if err != nil {
		tb.Fatal(err)
	}
	gg, err := autodiff.ValueAndGrad(g, params)
	if err != nil {
		tb.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	inputs := []*tensor.Tensor{rng.Normal(1, rows, width), rng.OneHotBatch(rows, width)}
	for range params {
		inputs = append(inputs, rng.Xavier(width, width))
	}
	return gg, inputs
}

// TestProgramMatchesEval is the golden gate for the compiled-closure
// executor: on a traced forward+backward graph, Program.Run must reproduce
// the reference interpreter bit for bit — in-place execution, buffer
// pooling, and fusion must be unobservable.
func TestProgramMatchesEval(t *testing.T) {
	g, inputs := mlpGrad(t, 3, 8, 16)
	want, err := Eval(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated runs reuse pooled buffers; results must stay identical and
	// previously returned outputs must stay intact.
	var prev []*tensor.Tensor
	for step := 0; step < 5; step++ {
		got, err := p.Run(inputs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("step %d: %d outputs, want %d", step, len(got), len(want))
		}
		for i := range want {
			if !tensor.AllClose(got[i], want[i], 0, 0) {
				t.Fatalf("step %d output %d: program diverges from Eval", step, i)
			}
		}
		for i := range prev {
			if !tensor.AllClose(prev[i], want[i], 0, 0) {
				t.Fatalf("step %d: pooling clobbered a previously returned output %d", step, i)
			}
		}
		prev = got
	}
	// Inputs must never be mutated by in-place execution.
	rng := tensor.NewRNG(3)
	fresh := []*tensor.Tensor{rng.Normal(1, 8, 16), rng.OneHotBatch(8, 16)}
	for i := 0; i < 2; i++ {
		if !tensor.AllClose(inputs[i], fresh[i], 0, 0) {
			t.Fatalf("input %d was mutated by Run", i)
		}
	}
}

// TestProgramReshapeAliasing checks that view-reshapes through the compiled
// path neither corrupt results nor recycle storage that outputs alias.
func TestProgramReshapeAliasing(t *testing.T) {
	g, err := trace.Trace("reshape", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, 6)
		v := b.Reshape(x, 6, 4)              // aliases a graph input
		m := b.MatMul(v, b.Reshape(v, 4, 6)) // alias of alias
		flat := b.Reshape(m, 36)             // output aliases an intermediate
		return []*ir.Value{flat, b.Sum(m)}
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	in := rng.Normal(1, 4, 6)
	want, err := Eval(g, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := p.Run([]*tensor.Tensor{in})
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if !tensor.AllClose(got[j], want[j], 1e-12, 1e-12) {
				t.Fatalf("run %d output %d mismatch", i, j)
			}
		}
	}
}

// TestProgramOutputsIndependent pins the ownership contract for outputs:
// even when a graph output is a Reshape of a caller input, or two outputs
// share storage, the returned tensors must be independently owned — mutating
// one must not touch the caller's inputs or any other output.
func TestProgramOutputsIndependent(t *testing.T) {
	g, err := trace.Trace("alias-out", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 2, 3)
		v := b.Reshape(x, 3, 2) // output aliasing a caller input
		s := b.Scale(x, 2)
		return []*ir.Value{v, s, b.Reshape(s, 6)} // two outputs sharing a root
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got, err := p.Run([]*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	got[0].Set(99, 0, 0)
	if in.At(0, 0) != 1 {
		t.Fatal("mutating output 0 corrupted the caller's input")
	}
	got[1].Set(-7, 0, 0)
	if got[2].Data()[0] == -7 {
		t.Fatal("outputs 1 and 2 share storage")
	}
}

// TestProgramFusionSelfAdd pins the fuser's corner case ReLU(Add(mm, mm)):
// both Add operands are the MatMul result, so there is no bias operand to
// fuse and the chain must fall back to unfused execution (regression: the
// fused kernel read the never-materialized MatMul slot and panicked).
func TestProgramFusionSelfAdd(t *testing.T) {
	g, err := trace.Trace("self-add", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, 4)
		w := b.Input("w", 4, 4)
		mm := b.MatMul(x, w)
		return []*ir.Value{b.ReLU(b.Add(mm, mm))}
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	in := []*tensor.Tensor{rng.Normal(1, 4, 4), rng.Normal(1, 4, 4)}
	want, err := Eval(g, in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got[0], want[0], 1e-12, 1e-12) {
		t.Fatal("self-add fusion corner case diverges from Eval")
	}
}

// TestProgramConcurrentRuns exercises one shared Program from several
// goroutines (data-parallel replicas share compiled segments); run under
// -race.
func TestProgramConcurrentRuns(t *testing.T) {
	g, inputs := mlpGrad(t, 2, 4, 8)
	want, err := Eval(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProgram(g)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				got, err := p.Run(inputs)
				if err != nil {
					errc <- err
					return
				}
				for j := range want {
					if !tensor.AllClose(got[j], want[j], 0, 0) {
						errc <- fmt.Errorf("iteration %d output %d mismatch", i, j)
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkInterpStep measures one forward+backward evaluation of a 4-layer
// MLP on the compiled program vs the reference interpreter (-benchmem shows
// the pooling win).
func BenchmarkInterpStep(b *testing.B) {
	g, inputs := mlpGrad(b, 4, 8, 32)
	p, err := NewProgram(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Eval(g, inputs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
